//! The DP-invariant rule set, expressed as data over token streams.
//!
//! Four rule families guard the two invariants the whole workspace
//! hangs on — *noise before wire* and *budget before noise*:
//!
//! * **R1 (taint)** — the `RawAnswer` identifier may appear only in the
//!   modules allowed to wrap/unwrap exact counts, and `Released` values
//!   may be constructed only by the noise mechanisms.
//! * **R2 (budget pairing)** — a `reserve` result must be bound and
//!   must reach `commit` (or rely on the refund-on-drop guard); the
//!   escape hatches that defeat the guard (`mem::forget`,
//!   `ManuallyDrop`, `let _ =`) are banned outright. In durable serving
//!   code, `commit` must additionally be preceded in-function by a WAL
//!   append so a crash can never forget a debit whose answer shipped.
//! * **R3 (no panics in request handling)** — the server's request path
//!   converts failures into error responses that refund the
//!   reservation; `unwrap`/`expect`/`panic!` there would poison locks
//!   and strand budget.
//! * **R4 (unsafe discipline)** — `#![deny(unsafe_code)]` in every
//!   crate root, with `unsafe` itself allowed only in the explicitly
//!   audited allocation-counting bench shim and `relation::fxhash`.
//! * **R5 (failpoint containment)** — the deterministic fault-injection
//!   facility (`dpcq_store::faults`) may be *armed* only from its own
//!   module (production code paths being scanned here must never
//!   schedule a fault), and its site probes (`should_fail`,
//!   `check_fault`) may appear only at the audited instrumentation
//!   points. Test code is stripped before scanning and the `failpoints`
//!   cargo feature is enabled only through dev-dependencies, so release
//!   builds compile the probes to constants — R5 guards the remaining
//!   gap: non-test code growing an arming call or an unreviewed site.
//! * **R6 (telemetry taint)** — observability records timings, counts
//!   and ε totals, never data. The telemetry crate (`crates/obs/`) may
//!   not even *name* `RawAnswer` or `Released`, and at every
//!   instrumentation site a `dpcq_obs::…(…)` call's arguments must be
//!   free of both identifiers — the lexical shadow of the type-level
//!   rule that no answer-derived value flows into a metric or trace.
//!
//! Rules are *lexical approximations*, chosen so that idiomatic
//! compliant code never trips them (see `docs/INVARIANTS.md` for the
//! precision contract and how to add a rule). Test code is exempt:
//! the caller strips `#[cfg(test)]` items before handing us tokens.

use crate::lexer::{Token, TokenKind};
use std::fmt;

/// One rule violation, reported as `file:line: [rule] message`.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a [`TokenRule`] recognizes its identifier.
#[derive(Clone, Copy, Debug)]
pub enum Matcher {
    /// Any appearance of the identifier.
    Ident,
    /// Identifier immediately followed by `(` — a call or tuple-struct
    /// construction. `unwrap_or_else` is a different identifier and
    /// never matches a rule for `unwrap`.
    Call,
    /// Identifier immediately followed by `(`, or by `::new` — a
    /// constructor, spelled either way.
    Construct,
    /// Identifier immediately followed by `!` — a macro invocation.
    Macro,
}

/// Where a rule applies. Paths are workspace-relative, `/`-separated;
/// an entry ending in `/` matches the whole subtree.
#[derive(Clone, Copy, Debug)]
pub enum Scope {
    /// Applies everywhere in the scan set.
    All,
    /// Applies only to the listed files.
    Only(&'static [&'static str]),
    /// Applies everywhere except the listed files/subtrees.
    Except(&'static [&'static str]),
}

impl Scope {
    fn applies_to(self, file: &str) -> bool {
        fn listed(list: &[&str], file: &str) -> bool {
            list.iter().any(|p| {
                if p.ends_with('/') {
                    file.starts_with(p)
                } else {
                    file == *p
                }
            })
        }
        match self {
            Scope::All => true,
            Scope::Only(list) => listed(list, file),
            Scope::Except(list) => !listed(list, file),
        }
    }
}

/// A declarative token-pattern rule: in files where `scope` applies,
/// any `matcher`-match of `ident` is a violation.
pub struct TokenRule {
    pub id: &'static str,
    pub ident: &'static str,
    pub matcher: Matcher,
    pub scope: Scope,
    pub message: &'static str,
}

/// The modules allowed to name `RawAnswer` — where counts are tainted
/// (noise crate root re-exports, mechanism unwraps) and the one engine
/// module that wraps the evaluator's output.
const RAW_ANSWER_MODULES: &[&str] = &[
    "crates/noise/src/taint.rs",
    "crates/noise/src/mechanism.rs",
    "crates/noise/src/lib.rs",
    "crates/core/src/engine.rs",
];

/// The only modules that may construct a `Released` value.
const RELEASE_MINTERS: &[&str] = &["crates/noise/src/taint.rs", "crates/noise/src/mechanism.rs"];

/// The server's request-handling path (R3 scope).
const REQUEST_PATH: &[&str] = &[
    "crates/server/src/server.rs",
    "crates/server/src/protocol.rs",
];

/// Audited `unsafe` sites: the hash kernel and the bench crate's
/// allocation-counting `GlobalAlloc` shim.
const UNSAFE_ALLOWED: &[&str] = &["crates/relation/src/fxhash.rs", "crates/bench/"];

/// The telemetry crate (R6): timings, counts and ε totals only — the
/// taint types must be unnameable here, so not even a `Debug` format of
/// an answer can reach a metric label or trace entry.
const OBS_CRATE: &[&str] = &["crates/obs/"];

/// The one module that may arm, seed, or clear failpoints (R5). Tests
/// arm them too, but test code is stripped before scanning; integration
/// tests under `crates/*/tests/` are outside the scan set entirely.
const FAILPOINT_ARMING_ALLOWED: &[&str] = &["crates/store/src/faults.rs"];

/// The audited failpoint *sites* (R5): WAL append/fsync, snapshot
/// rename, the server's reservation-to-commit window and socket write.
/// A new site means a new entry here — deliberately a reviewed change.
const FAILPOINT_SITES_ALLOWED: &[&str] = &[
    "crates/store/src/faults.rs",
    "crates/store/src/wal.rs",
    "crates/store/src/snapshot.rs",
    "crates/server/src/server.rs",
];

/// The whole rule table. `dpa check` is this data plus five structural
/// passes ([`check_reserve_discipline`], [`check_reserve_commit_pairing`],
/// [`check_wal_before_commit`], [`check_deny_unsafe_attr`],
/// [`check_obs_call_taint`]).
pub const TOKEN_RULES: &[TokenRule] = &[
    TokenRule {
        id: "R1",
        ident: "RawAnswer",
        matcher: Matcher::Ident,
        scope: Scope::Except(RAW_ANSWER_MODULES),
        message: "`RawAnswer` (an exact, un-noised count) must not escape \
                  noise::{taint,mechanism} / core::engine",
    },
    TokenRule {
        id: "R1",
        ident: "Released",
        matcher: Matcher::Construct,
        scope: Scope::Except(RELEASE_MINTERS),
        message: "only noise::mechanism may construct `Released`; \
                  everything else post-processes existing releases",
    },
    TokenRule {
        id: "R2",
        ident: "forget",
        matcher: Matcher::Call,
        scope: Scope::All,
        message: "`mem::forget` defeats the reservation refund-on-drop guard",
    },
    TokenRule {
        id: "R2",
        ident: "ManuallyDrop",
        matcher: Matcher::Ident,
        scope: Scope::All,
        message: "`ManuallyDrop` defeats the reservation refund-on-drop guard",
    },
    TokenRule {
        id: "R3",
        ident: "unwrap",
        matcher: Matcher::Call,
        scope: Scope::Only(REQUEST_PATH),
        message: "no `unwrap()` in request handling: convert to an error \
                  response so the reservation refunds",
    },
    TokenRule {
        id: "R3",
        ident: "expect",
        matcher: Matcher::Call,
        scope: Scope::Only(REQUEST_PATH),
        message: "no `expect()` in request handling: convert to an error \
                  response so the reservation refunds",
    },
    TokenRule {
        id: "R3",
        ident: "panic",
        matcher: Matcher::Macro,
        scope: Scope::Only(REQUEST_PATH),
        message: "no `panic!` in request handling: a panic poisons the \
                  engine lock and strands in-flight budget",
    },
    TokenRule {
        id: "R3",
        ident: "unreachable",
        matcher: Matcher::Macro,
        scope: Scope::Only(REQUEST_PATH),
        message: "no `unreachable!` in request handling",
    },
    TokenRule {
        id: "R3",
        ident: "todo",
        matcher: Matcher::Macro,
        scope: Scope::Only(REQUEST_PATH),
        message: "no `todo!` in request handling",
    },
    TokenRule {
        id: "R3",
        ident: "unimplemented",
        matcher: Matcher::Macro,
        scope: Scope::Only(REQUEST_PATH),
        message: "no `unimplemented!` in request handling",
    },
    TokenRule {
        id: "R5",
        ident: "arm_failpoint",
        matcher: Matcher::Call,
        scope: Scope::Except(FAILPOINT_ARMING_ALLOWED),
        message: "failpoints may be armed only from store::faults (tests \
                  are stripped before scanning): production code must \
                  never schedule a fault",
    },
    TokenRule {
        id: "R5",
        ident: "arm_failpoint_nth",
        matcher: Matcher::Call,
        scope: Scope::Except(FAILPOINT_ARMING_ALLOWED),
        message: "failpoints may be armed only from store::faults (tests \
                  are stripped before scanning): production code must \
                  never schedule a fault",
    },
    TokenRule {
        id: "R5",
        ident: "seed_failpoints",
        matcher: Matcher::Call,
        scope: Scope::Except(FAILPOINT_ARMING_ALLOWED),
        message: "failpoint schedules may be seeded only from store::faults \
                  (tests are stripped before scanning)",
    },
    TokenRule {
        id: "R5",
        ident: "should_fail",
        matcher: Matcher::Call,
        scope: Scope::Except(FAILPOINT_SITES_ALLOWED),
        message: "`faults::should_fail` probes belong only at the audited \
                  failpoint sites; add the file to FAILPOINT_SITES_ALLOWED \
                  to introduce a new one",
    },
    TokenRule {
        id: "R5",
        ident: "check_fault",
        matcher: Matcher::Call,
        scope: Scope::Except(FAILPOINT_SITES_ALLOWED),
        message: "`faults::check_fault` probes belong only at the audited \
                  failpoint sites; add the file to FAILPOINT_SITES_ALLOWED \
                  to introduce a new one",
    },
    TokenRule {
        id: "R4",
        ident: "unsafe",
        matcher: Matcher::Ident,
        scope: Scope::Except(UNSAFE_ALLOWED),
        message: "`unsafe` is allowed only in relation::fxhash and the \
                  bench allocation shim",
    },
    TokenRule {
        id: "R6",
        ident: "RawAnswer",
        matcher: Matcher::Ident,
        scope: Scope::Only(OBS_CRATE),
        message: "the telemetry crate must not name `RawAnswer`: metrics \
                  and traces record timings, counts and ε totals only (P1)",
    },
    TokenRule {
        id: "R6",
        ident: "Released",
        matcher: Matcher::Ident,
        scope: Scope::Only(OBS_CRATE),
        message: "the telemetry crate must not name `Released`: metrics \
                  and traces record timings, counts and ε totals only (P1)",
    },
];

/// Crate roots that must carry `#![deny(unsafe_code)]`. The bench crate
/// is exempt: it hosts the audited `GlobalAlloc` shim.
const DENY_UNSAFE_EXEMPT: &[&str] = &["crates/bench/src/lib.rs"];

/// Runs every token-pattern rule over one (test-stripped) file.
pub fn check_token_rules(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for rule in TOKEN_RULES {
        if !rule.scope.applies_to(file) {
            continue;
        }
        for (i, tok) in tokens.iter().enumerate() {
            if !tok.is_ident(rule.ident) {
                continue;
            }
            let hit = match rule.matcher {
                Matcher::Ident => true,
                Matcher::Call => next_is_punct(tokens, i, '('),
                Matcher::Macro => next_is_punct(tokens, i, '!'),
                Matcher::Construct => {
                    next_is_punct(tokens, i, '(')
                        || (next_is_punct(tokens, i, ':')
                            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                            && tokens.get(i + 3).is_some_and(|t| t.is_ident("new")))
                }
            };
            if hit {
                out.push(Violation {
                    file: file.to_string(),
                    line: tok.line,
                    rule: rule.id,
                    message: rule.message.to_string(),
                });
            }
        }
    }
}

fn next_is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(c))
}

/// Do these tokens name the budget API at all? The R2 structural
/// passes key `reserve`/`commit` to `BudgetAccountant` reservations;
/// files that never mention the API (where `reserve` could only be
/// `Vec::reserve` and friends) are out of scope.
fn mentions_budget_api(tokens: &[Token]) -> bool {
    tokens
        .iter()
        .any(|t| t.is_ident("BudgetAccountant") || t.is_ident("Reservation"))
}

/// R2, part one: a `reserve(…)` result must be **bound**. The refund
/// guard lives in the returned `Reservation`; discarding it with
/// `let _ = …` or a bare expression statement drops (and refunds) it
/// before the ε is ever used, which is always a bug.
///
/// Statements are approximated as token runs between `;`, `{`, and `}`.
/// A statement containing a `reserve(` call passes if it shows any sign
/// of consuming the result: a binding or assignment (`=`), error
/// propagation (`?`), `return`, a `match`/`if` scrutinee, or an
/// immediate `commit`. Signatures (`fn reserve(…)`) are declarations,
/// not calls.
pub fn check_reserve_discipline(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    if !mentions_budget_api(tokens) {
        return;
    }
    for stmt in tokens.split(|t| {
        matches!(
            t.kind,
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
        )
    }) {
        let Some(call_at) = stmt
            .iter()
            .position(|t| t.is_ident("reserve"))
            .filter(|&i| next_is_punct(stmt, i, '('))
        else {
            continue;
        };
        if stmt[..call_at].iter().any(|t| t.is_ident("fn")) {
            continue; // `fn reserve(…)` — the definition, not a call
        }
        let line = stmt[call_at].line;
        let discarded_underscore = stmt.len() >= 3
            && stmt[0].is_ident("let")
            && stmt[1].is_ident("_")
            && stmt[2].is_punct('=');
        let consumed = stmt.iter().any(|t| {
            t.is_punct('=')
                || t.is_punct('?')
                || t.is_ident("return")
                || t.is_ident("match")
                || t.is_ident("if")
                || t.is_ident("commit")
        });
        if discarded_underscore {
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: "R2",
                message: "`let _ = …reserve(…)` drops the reservation guard \
                          immediately; bind it and commit or let errors refund"
                    .to_string(),
            });
        } else if !consumed {
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: "R2",
                message: "`reserve(…)` result discarded; bind the reservation \
                          so it can commit (or refund on drop)"
                    .to_string(),
            });
        }
    }
}

/// R2, part two: a function that both reserves budget and samples noise
/// must contain a `commit` — otherwise every release it performs is
/// refunded after the noisy answer already shipped, i.e. a free query.
pub fn check_reserve_commit_pairing(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    if !mentions_budget_api(tokens) {
        return;
    }
    for (at, open, end) in fn_bodies(tokens) {
        let fn_line = tokens[at].line;
        let fn_name = tokens
            .get(at + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let body = &tokens[open..=end];
        let has = |name: &str, then: char| {
            body.iter()
                .enumerate()
                .any(|(k, t)| t.is_ident(name) && next_is_punct(body, k, then))
        };
        if has("reserve", '(') && has("sample", '(') && !body.iter().any(|t| t.is_ident("commit")) {
            out.push(Violation {
                file: file.to_string(),
                line: fn_line,
                rule: "R2",
                message: format!(
                    "fn `{fn_name}` reserves budget and samples noise but never \
                     commits: the reservation refunds after the answer ships"
                ),
            });
        }
    }
}

/// R2, part three (durability): in a file that handles both budget and
/// durable state, a function that calls `commit(…)` must first append
/// the matching ledger record to the WAL (`log_commit(…)` or a raw
/// `append(…)`) **earlier in the same function**. Committing before the
/// record is durable opens a crash window where ε was debited in memory,
/// the answer shipped, and the restart forgets the debit — a free query
/// after every crash.
///
/// Gated to files that (a) live in the serving layer, (b) name the
/// budget API, and (c) name `Wal` or `Durability` — in-memory code paths
/// and the store crate itself (which has no budget to mis-order) stay
/// out of scope, as does `Reservation::commit`'s own definition.
pub fn check_wal_before_commit(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    if !file.starts_with("crates/server/src/") || !mentions_budget_api(tokens) {
        return;
    }
    if !tokens
        .iter()
        .any(|t| t.is_ident("Wal") || t.is_ident("Durability"))
    {
        return;
    }
    for (_, open, end) in fn_bodies(tokens) {
        let body = &tokens[open..=end];
        let mut logged_at: Option<usize> = None;
        for (k, tok) in body.iter().enumerate() {
            if (tok.is_ident("log_commit") || tok.is_ident("append")) && next_is_punct(body, k, '(')
            {
                logged_at.get_or_insert(k);
            }
            if tok.is_ident("commit")
                && next_is_punct(body, k, '(')
                && !(k > 0 && body[k - 1].is_ident("fn"))
                && logged_at.is_none_or(|at| at > k)
            {
                out.push(Violation {
                    file: file.to_string(),
                    line: tok.line,
                    rule: "R2",
                    message: "`commit()` without a preceding WAL `log_commit`/`append` \
                              in this function: a crash between them forgets the debit \
                              and replays the release for free"
                        .to_string(),
                });
            }
        }
    }
}

/// R6, call-site half: at every instrumentation point, the arguments of
/// a `dpcq_obs::…(…)` call must not contain the `RawAnswer` or
/// `Released` identifiers. The registry's API takes only enums and
/// plain integers, so compliant call sites never need either name —
/// an appearance means someone is deriving a metric or trace value
/// from an answer (e.g. `dpcq_obs::observe_stage_ns(s, raw.count())`
/// spelled through the taint type), which R6 exists to forbid.
///
/// Lexical approximation: find `dpcq_obs ::`, walk to the first `(` of
/// that call expression, and scan the balanced-paren argument region
/// for the tainted identifiers. Values laundered through a local
/// binding first are caught by the type-level taint (`RawAnswer` has no
/// numeric accessors outside the whitelisted modules) plus R1.
pub fn check_obs_call_taint(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let mut i = 0usize;
    while i < tokens.len() {
        let pathy = tokens[i].is_ident("dpcq_obs")
            && next_is_punct(tokens, i, ':')
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'));
        if !pathy {
            i += 1;
            continue;
        }
        // Walk the path segments to this call's opening paren; a
        // statement boundary first means a non-call use (imports,
        // type positions) — out of scope.
        let mut j = i + 3;
        let open = loop {
            match tokens.get(j) {
                None => break None,
                Some(t) if t.is_punct('(') => break Some(j),
                Some(t)
                    if t.is_punct(';')
                        || t.is_punct('{')
                        || t.is_punct('}')
                        || t.is_punct(',')
                        || t.is_punct(')') =>
                {
                    break None;
                }
                Some(_) => j += 1,
            }
        };
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let mut depth = 0usize;
        let mut k = open;
        while let Some(t) = tokens.get(k) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("RawAnswer") || t.is_ident("Released") {
                out.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    rule: "R6",
                    message: format!(
                        "`{}` flows into a `dpcq_obs::` call: telemetry records \
                         timings, counts and ε totals, never answer-derived \
                         values (P1–P3)",
                        t.text
                    ),
                });
            }
            k += 1;
        }
        i = k.max(i + 1);
    }
}

/// `(fn keyword, open brace, close brace)` token indices of every `fn`
/// with a body. The opening brace is the first `{` at bracket depth zero
/// after the signature (skipping parenthesized args and any bracketed
/// generics); bodiless trait method declarations are skipped.
fn fn_bodies(tokens: &[Token]) -> Vec<(usize, usize, usize)> {
    let mut bodies = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut depth = 0usize;
        let body_open = loop {
            match tokens.get(j) {
                None => break None,
                Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') => depth += 1,
                Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') => {
                    depth = depth.saturating_sub(1)
                }
                Some(t) if t.is_punct('{') && depth == 0 => break Some(j),
                Some(t) if t.is_punct(';') && depth == 0 => break None, // trait method decl
                Some(_) => {}
            }
            j += 1;
        };
        let Some(open) = body_open else {
            i = j.max(i + 1);
            continue;
        };
        let mut brace = 0usize;
        let mut end = open;
        while end < tokens.len() {
            if tokens[end].is_punct('{') {
                brace += 1;
            } else if tokens[end].is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            end += 1;
        }
        bodies.push((i, open, end.min(tokens.len() - 1)));
        i += 1;
    }
    bodies
}

/// Is `file` a crate root (`crates/<name>/src/lib.rs` or
/// `tests/src/lib.rs`)?
fn is_crate_root(file: &str) -> bool {
    if file == "tests/src/lib.rs" {
        return true;
    }
    file.strip_prefix("crates/")
        .and_then(|rest| rest.split_once('/'))
        .is_some_and(|(_, tail)| tail == "src/lib.rs")
}

/// R4: every crate root must open with `#![deny(unsafe_code)]`, so a
/// future `unsafe` block is a *compile* error, not just a dpa finding.
/// Runs on the unstripped token stream (the attribute precedes any
/// test module anyway).
pub fn check_deny_unsafe_attr(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    if !is_crate_root(file) || DENY_UNSAFE_EXEMPT.contains(&file) {
        return;
    }
    let found = tokens.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("deny")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
    });
    if !found {
        out.push(Violation {
            file: file.to_string(),
            line: 1,
            rule: "R4",
            message: "crate root is missing `#![deny(unsafe_code)]`".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_cfg_test};

    fn violations_in(file: &str, src: &str) -> Vec<Violation> {
        let tokens = strip_cfg_test(&lex(src));
        let mut out = Vec::new();
        check_token_rules(file, &tokens, &mut out);
        check_reserve_discipline(file, &tokens, &mut out);
        check_reserve_commit_pairing(file, &tokens, &mut out);
        check_wal_before_commit(file, &tokens, &mut out);
        check_obs_call_taint(file, &tokens, &mut out);
        out
    }

    #[test]
    fn r1_raw_answer_flagged_outside_whitelist() {
        let src = "pub fn leak(r: RawAnswer) -> u128 { r.count() }";
        let v = violations_in("crates/server/src/cache.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R1");
        assert_eq!(v[0].line, 1);
        // Same tokens inside the whitelist are clean.
        assert!(violations_in("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn r1_released_type_use_is_fine_but_construction_is_not() {
        let typed = "pub fn ship(v: Released) -> f64 { v.get() }";
        assert!(violations_in("crates/wire/src/lib.rs", typed).is_empty());
        let minted = "pub fn fake() -> Released { Released(0.0) }";
        let v = violations_in("crates/wire/src/lib.rs", minted);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R1");
        let pathy = "pub fn fake() -> Released { Released::new(0.0) }";
        assert_eq!(violations_in("crates/wire/src/lib.rs", pathy).len(), 1);
    }

    #[test]
    fn r2_ignores_vec_reserve_in_files_without_budget_api() {
        // `Vec::reserve` in the eval kernels must not trip R2: the file
        // never names `BudgetAccountant`/`Reservation`.
        let src = "fn grow(pairs: &mut Vec<u64>, n: usize) { pairs.reserve(n); }";
        assert!(violations_in("crates/eval/src/factor.rs", src).is_empty());
    }

    #[test]
    fn r2_fn_reserve_definition_is_not_a_call() {
        let src = r#"
            impl BudgetAccountant {
                pub fn reserve(&self, principal: &str, epsilon: f64) -> Result<Reservation, E> {
                    self.with_ledger(principal, make)
                }
            }
        "#;
        assert!(violations_in("crates/server/src/budget.rs", src).is_empty());
    }

    #[test]
    fn r2_discarded_reservations_flagged() {
        let dropped = "fn f(a: &BudgetAccountant) { let _ = a.reserve(p, e); }";
        let v = violations_in("crates/server/src/budget.rs", dropped);
        assert!(v.iter().any(|v| v.rule == "R2"), "{v:?}");

        let bare = "fn f(a: &BudgetAccountant) { a.reserve(p, e); }";
        let v = violations_in("crates/server/src/budget.rs", bare);
        assert!(v.iter().any(|v| v.rule == "R2"), "{v:?}");

        let bound =
            "fn f(a: &BudgetAccountant) -> R<()> { let r = a.reserve(p, e)?; r.commit(); Ok(()) }";
        assert!(violations_in("crates/server/src/budget.rs", bound).is_empty());
    }

    #[test]
    fn r2_reserve_plus_sample_requires_commit() {
        let free_query = r#"
            fn respond(a: &BudgetAccountant, m: &Mech) -> f64 {
                let guard = a.reserve(p, e);
                if guard.is_err() { return 0.0; }
                m.sample(rng)
            }
        "#;
        let v = violations_in("crates/server/src/server.rs", free_query);
        assert!(
            v.iter()
                .any(|v| v.rule == "R2" && v.message.contains("respond")),
            "{v:?}"
        );

        let paired = r#"
            fn respond(a: &BudgetAccountant, m: &Mech) -> f64 {
                let guard = a.reserve(p, e).unwrap_or_else(die);
                let v = m.sample(rng);
                guard.commit();
                v
            }
        "#;
        let v = violations_in("crates/server/src/budget.rs", paired);
        assert!(v.iter().all(|v| v.rule != "R2"), "{v:?}");
    }

    #[test]
    fn r2_unlogged_commit_flagged_in_durable_serving_code() {
        // A commit with no WAL append anywhere in the function.
        let unlogged = r#"
            fn respond(a: &BudgetAccountant, wal: &Wal) -> f64 {
                let r = a.reserve(p, e).map_err(fail)?;
                let v = noisy();
                r.commit();
                v
            }
        "#;
        let v = violations_in("crates/server/src/server.rs", unlogged);
        assert!(
            v.iter()
                .any(|v| v.rule == "R2" && v.message.contains("log_commit")),
            "{v:?}"
        );

        // The append must come BEFORE the commit, not after.
        let late = r#"
            fn respond(a: &BudgetAccountant, wal: &Wal) -> f64 {
                let r = a.reserve(p, e).map_err(fail)?;
                r.commit();
                wal.append(&record).map_err(fail)?;
                noisy()
            }
        "#;
        let v = violations_in("crates/server/src/server.rs", late);
        assert!(
            v.iter()
                .any(|v| v.rule == "R2" && v.message.contains("log_commit")),
            "{v:?}"
        );

        // Logged first: clean (either spelling).
        for logger in ["durability.log_commit(&record)?", "wal.append(&bytes)?"] {
            let logged = format!(
                r#"
                fn respond(a: &BudgetAccountant, durability: &Durability) -> f64 {{
                    let r = a.reserve(p, e).map_err(fail)?;
                    {logger};
                    r.commit();
                    noisy()
                }}
            "#
            );
            let v = violations_in("crates/server/src/server.rs", &logged);
            assert!(v.iter().all(|v| !v.message.contains("log_commit")), "{v:?}");
        }
    }

    #[test]
    fn r2_wal_gate_skips_in_memory_and_foreign_code() {
        // No `Wal`/`Durability` mention: the in-memory server commits
        // without logging, by design.
        let in_memory = r#"
            fn respond(a: &BudgetAccountant) -> f64 {
                let r = a.reserve(p, e).map_err(fail)?;
                r.commit();
                noisy()
            }
        "#;
        assert!(violations_in("crates/server/src/server.rs", in_memory).is_empty());

        // `Reservation::commit`'s own definition is not a call site, and
        // files outside the serving layer are out of scope entirely.
        let definition = r#"
            impl Reservation {
                pub fn commit(mut self) { self.done = true; }
            }
        "#;
        assert!(violations_in("crates/server/src/budget.rs", definition).is_empty());
        let elsewhere = "fn f(a: &BudgetAccountant, w: &Wal) { tx.commit(); }";
        assert!(violations_in("crates/store/src/wal.rs", elsewhere).is_empty());
    }

    #[test]
    fn r3_panics_flagged_only_in_request_path() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let v = violations_in("crates/server/src/server.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R3");
        assert!(violations_in("crates/eval/src/lib.rs", src).is_empty());

        let mac = "fn f() { panic!(\"boom\") }";
        assert_eq!(
            violations_in("crates/server/src/protocol.rs", mac)[0].rule,
            "R3"
        );
        // `unwrap_or_else` and field access `x.expect_me` are different
        // identifiers / not calls.
        let fine = "fn f(x: R) -> u32 { x.unwrap_or_else(|_| 0) }";
        assert!(violations_in("crates/server/src/server.rs", fine).is_empty());
    }

    #[test]
    fn r3_test_modules_are_exempt() {
        let src = r#"
            pub fn handler() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { assert_eq!(super::handler(), Some(1).unwrap()); }
            }
        "#;
        assert!(violations_in("crates/server/src/server.rs", src).is_empty());
    }

    #[test]
    fn r5_arming_flagged_outside_faults_module() {
        let armed = "fn sabotage() { dpcq_store::faults::arm_failpoint(\"wal.append.write\"); }";
        let v = violations_in("crates/server/src/server.rs", armed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R5");
        assert!(violations_in("crates/store/src/faults.rs", armed).is_empty());

        let seeded = "fn chaos() { seed_failpoints(42, 100); }";
        assert_eq!(
            violations_in("crates/store/src/wal.rs", seeded)[0].rule,
            "R5"
        );

        // Arming from a test module is stripped before scanning.
        let in_test = r#"
            pub fn handler() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { crate::faults::arm_failpoint("wal.append.write"); }
            }
        "#;
        assert!(violations_in("crates/store/src/wal.rs", in_test).is_empty());
    }

    #[test]
    fn r5_site_probes_allowed_only_at_audited_sites() {
        let probe = "fn f() -> io::Result<()> { crate::faults::check_fault(\"site\") }";
        assert!(violations_in("crates/store/src/wal.rs", probe).is_empty());
        assert!(violations_in("crates/store/src/snapshot.rs", probe).is_empty());
        let v = violations_in("crates/server/src/durability.rs", probe);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R5");

        let gate = "fn f() -> bool { dpcq_store::faults::should_fail(\"x\") }";
        assert!(violations_in("crates/server/src/server.rs", gate).is_empty());
        assert_eq!(
            violations_in("crates/core/src/engine.rs", gate)[0].rule,
            "R5"
        );
    }

    #[test]
    fn r6_obs_crate_must_not_name_taint_types() {
        let raw = "pub fn snoop(r: &RawAnswer) -> u64 { 0 }";
        let v = violations_in("crates/obs/src/lib.rs", raw);
        assert!(v.iter().any(|v| v.rule == "R6"), "{v:?}");

        let rel = "pub fn label(v: Released) {}";
        let v = violations_in("crates/obs/src/hist.rs", rel);
        assert!(v.iter().any(|v| v.rule == "R6"), "{v:?}");

        // Outside the telemetry crate, *typing* a Released value is
        // ordinary post-processing — R6's name ban does not apply.
        assert!(violations_in("crates/server/src/cache.rs", rel)
            .iter()
            .all(|v| v.rule != "R6"));
    }

    #[test]
    fn r6_tainted_values_cannot_flow_into_telemetry_calls() {
        // `crates/core/src/engine.rs` may name RawAnswer (R1 whitelist),
        // so the only finding here is the R6 call-site flow.
        let leak = "fn f(q: &Query) { \
                    dpcq_obs::observe_stage_ns(dpcq_obs::Stage::Sample, \
                    RawAnswer::new(3).count() as u64); }";
        let v = violations_in("crates/core/src/engine.rs", leak);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R6");
        assert!(v[0].message.contains("RawAnswer"), "{}", v[0].message);

        // `Released` laundered into a telemetry argument is flagged even
        // where the identifier itself is otherwise legal.
        let rel = "fn g(v: f64) { dpcq_obs::emit(Released::get(&v)); }";
        let v = violations_in("crates/server/src/cache.rs", rel);
        assert!(v.iter().any(|v| v.rule == "R6"), "{v:?}");

        // Compliant instrumentation — enums and integers — is clean,
        // including nested `dpcq_obs::` paths in argument position.
        let clean = "fn f() { \
                     let _s = dpcq_obs::Span::enter(dpcq_obs::Stage::Sample); \
                     dpcq_obs::observe_stage_ns(dpcq_obs::Stage::Flush, 12); \
                     dpcq_obs::cache_access(dpcq_obs::CacheKind::Release, true); }";
        assert!(violations_in("crates/core/src/engine.rs", clean).is_empty());

        // Non-call uses of the path (imports, types) are out of scope.
        let import = "use dpcq_obs::Stage; fn f(s: dpcq_obs::Trace) {}";
        assert!(violations_in("crates/core/src/engine.rs", import).is_empty());
    }

    #[test]
    fn r4_unsafe_flagged_outside_allowed_files() {
        let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let v = violations_in("crates/relation/src/bitset.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R4");
        assert!(violations_in("crates/relation/src/fxhash.rs", src).is_empty());
        assert!(violations_in("crates/bench/src/alloc.rs", src).is_empty());
    }

    #[test]
    fn r4_crate_roots_need_the_deny_attr() {
        let mut out = Vec::new();
        check_deny_unsafe_attr("crates/query/src/lib.rs", &lex("pub fn f() {}"), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "R4");

        let mut out = Vec::new();
        check_deny_unsafe_attr(
            "crates/query/src/lib.rs",
            &lex("#![deny(unsafe_code)]\npub fn f() {}"),
            &mut out,
        );
        assert!(out.is_empty());

        // Non-roots and the bench exemption are skipped.
        let mut out = Vec::new();
        check_deny_unsafe_attr("crates/query/src/parse.rs", &lex("fn f() {}"), &mut out);
        check_deny_unsafe_attr("crates/bench/src/lib.rs", &lex("fn f() {}"), &mut out);
        assert!(out.is_empty());
    }
}
