//! A small, purpose-built Rust lexer.
//!
//! `dpa` deliberately does not parse Rust — it lexes it. Every rule in
//! [`crate::rules`] is expressible over the token stream (identifier
//! whitelists, adjacency patterns like `ident (`, balanced-brace item
//! skipping), and a lexer is something we can vendor in ~300 lines with
//! zero dependencies, per the workspace's vendor policy. The trade-off
//! is honesty about precision: rules are lexical approximations, tuned
//! to have no false positives on this workspace (see
//! `docs/INVARIANTS.md`).
//!
//! What the lexer gets right, because the rules depend on it:
//!
//! * **Comments** (line, nested block) and **string/char literals**
//!   (including raw strings `r#"…"#` and byte strings) produce no
//!   identifier tokens — `// don't log RawAnswer` must not trip R1.
//! * **Lifetimes vs. char literals**: `'a` is one token, `'a'` is a
//!   literal.
//! * Compound identifiers are single tokens: `unwrap_or_else` never
//!   matches a rule looking for `unwrap`.

/// What a token is; rules match on kind + text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `RawAnswer`, …).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// String, char, byte, or numeric literal. Text is not preserved —
    /// no rule looks inside literals, and dropping the bodies keeps
    /// rule data (which names forbidden identifiers in strings) from
    /// matching itself.
    Literal,
    /// A single punctuation character: `(`, `!`, `#`, `:`, ….
    Punct(char),
}

/// One lexed token with the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    /// Identifier/lifetime text; empty for literals and punctuation.
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes `source` into tokens, skipping whitespace and comments.
///
/// Unterminated constructs (block comment, string) consume to EOF
/// rather than erroring: `dpa` runs on code that `rustc` also compiles,
/// so malformed files will fail the build anyway.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                'r' | 'b' if self.starts_raw_or_byte_string() => self.raw_or_byte_string(line),
                '\'' => self.quote(line),
                _ if c == '_' || c.is_alphanumeric() => self.word(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), String::new(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// At a `"`: consume an ordinary string literal with `\` escapes.
    fn string_literal(&mut self, line: u32) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// Does the cursor start `r"`, `r#`, `b"`, `b'`, `br"`, or `br#`?
    /// (Otherwise `r`/`b` begin an ordinary identifier.)
    fn starts_raw_or_byte_string(&self) -> bool {
        let (mut i, first) = (1usize, self.peek(0));
        if first == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        match (first, self.peek(i)) {
            (Some('r') | Some('b'), Some('"') | Some('#')) => {
                // `r#ident` is a raw identifier, not a raw string: a `#`
                // must be followed (eventually) by `"` through more `#`s.
                let mut j = i;
                while self.peek(j) == Some('#') {
                    j += 1;
                }
                self.peek(j) == Some('"')
            }
            (Some('b'), Some('\'')) => true,
            _ => false,
        }
    }

    fn raw_or_byte_string(&mut self, line: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            // b'x' byte literal: same shape as a char literal.
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Literal, String::new(), line);
            return;
        }
        if self.peek(0) == Some('r') {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening `"`
        'body: loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break 'body;
                    }
                }
                Some(_) => {}
                None => break 'body,
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// At a `'`: lifetime (`'a`) or char literal (`'a'`, `'\n'`).
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let is_lifetime =
            matches!(next, Some(c) if c == '_' || c.is_alphabetic()) && self.peek(2) != Some('\'');
        if is_lifetime {
            self.bump();
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Literal, String::new(), line);
        }
    }

    /// At an identifier or number start.
    fn word(&mut self, line: u32) {
        let starts_number = self.peek(0).is_some_and(|c| c.is_ascii_digit());
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else if starts_number && c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // `1.5` is one literal; `1..n` leaves the dots alone.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if starts_number {
            self.push(TokenKind::Literal, String::new(), line);
        } else {
            self.push(TokenKind::Ident, text, line);
        }
    }
}

/// Removes every item annotated `#[cfg(test)]` from the token stream.
///
/// Rules govern production code; test modules are free to call
/// `unwrap()` and to mint `RawAnswer`s for fixtures. An annotated item
/// is skipped through its balanced `{ … }` block (modules, functions)
/// or trailing `;` (use declarations), whichever comes first at nesting
/// depth zero. Other attributes between the `cfg` and the item (e.g.
/// `#[test]`, doc comments) are skipped with it.
pub fn strip_cfg_test(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            i += 7; // consume `# [ cfg ( test ) ]`
            i = skip_item(tokens, i);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// Is `tokens[i..]` exactly `# [ cfg ( test ) ]`?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let t = |k: usize| tokens.get(i + k);
    matches!(
        (t(0), t(1), t(2), t(3), t(4), t(5), t(6)),
        (Some(a), Some(b), Some(c), Some(d), Some(e), Some(f), Some(g))
            if a.is_punct('#')
                && b.is_punct('[')
                && c.is_ident("cfg")
                && d.is_punct('(')
                && e.is_ident("test")
                && f.is_punct(')')
                && g.is_punct(']')
    )
}

/// Skips one item starting at `i`: through a balanced top-level
/// `{ … }`, or to a `;` at depth zero. Attributes (`#[…]`) before the
/// item are consumed along the way.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 && tokens[i].is_punct('}') {
                    return i + 1;
                }
            }
            TokenKind::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r###"
            // RawAnswer in a line comment
            /* RawAnswer /* nested */ still hidden */
            let a = "RawAnswer in a string";
            let b = r#"RawAnswer in a raw string"#;
            let c = 'R';
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "RawAnswer"), "{ids:?}");
        assert_eq!(ids, ["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let literals = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(literals, 1);
    }

    #[test]
    fn compound_identifiers_stay_whole() {
        let ids = idents("x.unwrap_or_else(f); y.unwrap();");
        assert_eq!(ids, ["x", "unwrap_or_else", "f", "y", "unwrap"]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn numbers_lex_as_literals_without_eating_ranges() {
        let toks = lex("1.5 + x[1..2]");
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            [
                TokenKind::Literal,
                TokenKind::Punct('+'),
                TokenKind::Ident,
                TokenKind::Punct('['),
                TokenKind::Literal,
                TokenKind::Punct('.'),
                TokenKind::Punct('.'),
                TokenKind::Literal,
                TokenKind::Punct(']'),
            ]
        );
    }

    #[test]
    fn strip_cfg_test_removes_test_modules_and_functions() {
        let src = r#"
            pub fn keep() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn uses_unwrap() { x.unwrap(); }
            }
            pub fn also_keep() {}
            #[cfg(test)]
            use std::mem::forget;
        "#;
        let kept = strip_cfg_test(&lex(src));
        let ids: Vec<_> = kept
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"keep") && ids.contains(&"also_keep"));
        assert!(!ids.contains(&"unwrap") && !ids.contains(&"forget"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let ids = idents("let r#fn = 1; let rate = 2;");
        assert!(ids.contains(&"fn".to_string()) || ids.contains(&"r".to_string()));
        assert!(ids.contains(&"rate".to_string()));
    }
}
