//! General predicates and the exponential-time `T_E` algorithm of
//! Section 5.1.
//!
//! For arbitrary computable predicates, `T_Ē(I)` is computed by flipping
//! the problem around (Eqs. (36)–(37)): for a candidate set `B` of residual
//! rows sharing a boundary valuation `t₁`, ask whether the conjunction of
//! the predicates instantiated by every row of `B` — with the variables of
//! the *removed* atoms left free (they are `∂q²`, shared across all rows) —
//! is satisfiable. The largest satisfiable `|B|` over all boundary groups
//! is `T_Ē(I)`.
//!
//! Satisfiability is delegated to a [`SatOracle`]; Theorem 1.2's condition
//! is exactly that such an oracle exists. [`OrderOracle`] (backed by
//! [`crate::order_csp`]) serves the inequality/comparison case; users may
//! plug in their own oracle for richer predicate classes.
//!
//! The search is exponential in the residual size, as in the paper; it is
//! guarded by an explicit row budget.

use crate::error::EvalError;
use crate::naive;
use crate::order_csp::{Operand, OrderCsp};
use dpcq_query::{CmpOp, ConjunctiveQuery, VarId};
use dpcq_relation::{Database, FxHashMap, FxHashSet, Value};

/// A computable predicate `P(y)` over query variables.
pub trait GenericPredicate {
    /// The predicate's variable tuple `y` (distinct variables).
    fn variables(&self) -> Vec<VarId>;

    /// Evaluates `P` on values aligned with [`GenericPredicate::variables`].
    fn eval(&self, args: &[Value]) -> bool;

    /// If the predicate is a binary order constraint, its normal form (for
    /// [`OrderOracle`]): terms refer to positions in `variables()` or
    /// constants.
    fn order_form(&self) -> Option<(GTerm, CmpOp, GTerm)> {
        None
    }
}

/// A term of a generic predicate's normal form.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GTerm {
    /// Position into the predicate's variable list.
    Slot(usize),
    /// A constant.
    Const(Value),
}

/// One slot of an instantiated predicate: bound by a residual row, or free
/// (a `∂q²` variable ranging over the full domain).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Slot {
    /// Fixed by the candidate row.
    Bound(Value),
    /// Free; equal occurrences of the same `VarId` must take equal values.
    Free(VarId),
}

/// A predicate with some arguments instantiated — the `ϕᵢ = Pⱼ(uᵢ)` of
/// Theorem 1.2.
pub struct Constraint<'p> {
    /// The underlying predicate.
    pub pred: &'p dyn GenericPredicate,
    /// Slots aligned with `pred.variables()`.
    pub slots: Vec<Slot>,
}

/// Decides satisfiability of a conjunction of instantiated predicates over
/// the infinite domain ℤ.
pub trait SatOracle {
    /// Returns `true` iff some assignment of the free variables satisfies
    /// every constraint.
    fn satisfiable(&self, constraints: &[Constraint<'_>]) -> bool;
}

/// A [`SatOracle`] for binary order constraints (`=`, `≠`, `<`, `≤`, `>`,
/// `≥`), complete over ℤ via [`OrderCsp`].
///
/// # Panics
/// Panics if a constraint's predicate does not expose an
/// [`GenericPredicate::order_form`].
#[derive(Default, Clone, Copy, Debug)]
pub struct OrderOracle;

impl SatOracle for OrderOracle {
    fn satisfiable(&self, constraints: &[Constraint<'_>]) -> bool {
        let mut csp = OrderCsp::new();
        for c in constraints {
            let (l, op, r) = c
                .pred
                .order_form()
                .expect("OrderOracle requires order-form predicates");
            let resolve = |t: GTerm| match t {
                GTerm::Const(v) => Operand::Const(v.0),
                GTerm::Slot(i) => match c.slots[i] {
                    Slot::Bound(v) => Operand::Const(v.0),
                    Slot::Free(var) => Operand::Var(var.0),
                },
            };
            csp.add(resolve(l), op, resolve(r));
        }
        csp.satisfiable()
    }
}

/// A binary order predicate in generic form (useful for exercising the
/// Section 5.1 algorithm against the Section 5.2 materialization).
#[derive(Clone, Debug)]
pub struct OrderPredicate {
    vars: Vec<VarId>,
    lhs: GTerm,
    op: CmpOp,
    rhs: GTerm,
}

impl OrderPredicate {
    /// `x op y` between two variables.
    pub fn between(x: VarId, op: CmpOp, y: VarId) -> Self {
        if x == y {
            OrderPredicate {
                vars: vec![x],
                lhs: GTerm::Slot(0),
                op,
                rhs: GTerm::Slot(0),
            }
        } else {
            OrderPredicate {
                vars: vec![x, y],
                lhs: GTerm::Slot(0),
                op,
                rhs: GTerm::Slot(1),
            }
        }
    }

    /// `x op c` against a constant.
    pub fn against_const(x: VarId, op: CmpOp, c: Value) -> Self {
        OrderPredicate {
            vars: vec![x],
            lhs: GTerm::Slot(0),
            op,
            rhs: GTerm::Const(c),
        }
    }
}

impl GenericPredicate for OrderPredicate {
    fn variables(&self) -> Vec<VarId> {
        self.vars.clone()
    }

    fn eval(&self, args: &[Value]) -> bool {
        let get = |t: GTerm| match t {
            GTerm::Slot(i) => args[i],
            GTerm::Const(c) => c,
        };
        self.op.apply(get(self.lhs), get(self.rhs))
    }

    fn order_form(&self) -> Option<(GTerm, CmpOp, GTerm)> {
        Some((self.lhs, self.op, self.rhs))
    }
}

/// Computes `T_Ē(I)` for the residual on `subset` of a CQP whose
/// predicates are the query's own (applied per Corollary 5.1) plus the
/// given *generic* predicates, using the exponential algorithm of
/// Section 5.1 with the provided satisfiability oracle.
///
/// `row_limit` bounds the number of residual rows per boundary group (the
/// subset enumeration is `2^rows`).
pub fn t_e_general(
    query: &ConjunctiveQuery,
    db: &Database,
    subset: &[usize],
    generic_preds: &[&dyn GenericPredicate],
    oracle: &dyn SatOracle,
    row_limit: usize,
) -> Result<u128, EvalError> {
    if subset.is_empty() {
        return Ok(1);
    }
    let subset_vars = query.subset_vars(subset);
    let mut valuations = naive::satisfying_valuations(query, db, subset)?;

    // Generic predicates fully bound by the residual act as row filters;
    // the rest generate constraints with shared free variables.
    let (contained, crossing): (Vec<&dyn GenericPredicate>, Vec<&dyn GenericPredicate>) =
        generic_preds
            .iter()
            .copied()
            .partition(|p| p.variables().iter().all(|v| subset_vars.contains(v)));
    valuations.retain(|a| {
        contained.iter().all(|p| {
            let args: Vec<Value> = p
                .variables()
                .iter()
                .map(|v| a[v.0].expect("contained generic predicate var bound"))
                .collect();
            p.eval(&args)
        })
    });

    let boundary = query.boundary(subset);
    let mut groups: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    for (i, a) in valuations.iter().enumerate() {
        let key: Vec<Value> = boundary
            .iter()
            .map(|v| a[v.0].expect("boundary var bound"))
            .collect();
        groups.entry(key).or_default().push(i);
    }

    let output = query.residual_output(subset);
    let measure = |rows: &[usize]| -> u128 {
        match &output {
            None => rows.len() as u128,
            Some(o) if o.is_empty() => u128::from(!rows.is_empty()),
            Some(o) => {
                let mut distinct: FxHashSet<Vec<Value>> = FxHashSet::default();
                for &r in rows {
                    distinct.insert(
                        o.iter()
                            .map(|v| valuations[r][v.0].expect("output var bound"))
                            .collect(),
                    );
                }
                distinct.len() as u128
            }
        }
    };

    let mut best: u128 = 0;
    for rows in groups.values() {
        if crossing.is_empty() {
            best = best.max(measure(rows));
            continue;
        }
        if rows.len() > row_limit {
            return Err(EvalError::InstanceTooLarge {
                size: rows.len(),
                limit: row_limit,
            });
        }
        let m = rows.len();
        for mask in 1u64..(1 << m) {
            let chosen: Vec<usize> = (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| rows[i])
                .collect();
            let value = measure(&chosen);
            if value <= best {
                continue;
            }
            let mut constraints = Vec::new();
            for &r in &chosen {
                for p in &crossing {
                    let slots: Vec<Slot> = p
                        .variables()
                        .iter()
                        .map(|v| match valuations[r][v.0] {
                            Some(val) => Slot::Bound(val),
                            None => Slot::Free(*v),
                        })
                        .collect();
                    constraints.push(Constraint { pred: *p, slots });
                }
            }
            if oracle.satisfiable(&constraints) {
                best = value;
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active_domain::materialize_comparisons;
    use crate::Evaluator;
    use dpcq_query::parse_query;

    #[test]
    fn matches_materialization_on_comparisons() {
        // q = Edge(x,y) ⋈ Edge(y,z) with x < z spanning single-atom
        // residuals. Ground truth via Section 5.2 materialization.
        let mut d = Database::new();
        for e in [[1, 2], [2, 3], [3, 1], [2, 9], [9, 1], [1, 9]] {
            d.insert_tuple("Edge", &[Value(e[0]), Value(e[1])]);
        }
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z)").unwrap();
        let x = q.var_by_name("x").unwrap();
        let z = q.var_by_name("z").unwrap();
        let lt = OrderPredicate::between(x, CmpOp::Lt, z);
        let preds: Vec<&dyn GenericPredicate> = vec![&lt];

        let q_cmp = parse_query("Q(*) :- Edge(x, y), Edge(y, z), x < z").unwrap();
        let (q2, d2, added) = materialize_comparisons(&q_cmp, &d, 4096).unwrap();
        assert_eq!(added.len(), 1);
        let ev2 = Evaluator::new(&q2, &d2).unwrap();

        for subset in [vec![0usize], vec![1], vec![0, 1]] {
            let general = t_e_general(&q, &d, &subset, &preds, &OrderOracle, 20).unwrap();
            // In the materialized query the comparison atom (index 2) is
            // public and belongs to every residual.
            let mut mat_subset = subset.clone();
            mat_subset.push(2);
            let materialized = ev2.t_e(&mat_subset).unwrap();
            assert_eq!(general, materialized, "subset {subset:?}");
        }
    }

    #[test]
    fn contained_generic_predicates_filter_rows() {
        let mut d = Database::new();
        for e in [[1, 2], [1, 3], [1, 4]] {
            d.insert_tuple("Edge", &[Value(e[0]), Value(e[1])]);
        }
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z)").unwrap();
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        // Contained predicate on the atom-0 residual: x != y.
        let neq = OrderPredicate::between(x, CmpOp::Neq, y);
        let preds: Vec<&dyn GenericPredicate> = vec![&neq];
        // E = {0}: boundary {y}; out-edges of 1 to y ∈ {2,3,4}, each group
        // size 1; the filter does not remove them (1 != 2 etc.).
        let t = t_e_general(&q, &d, &[0], &preds, &OrderOracle, 20).unwrap();
        assert_eq!(t, 1);
    }

    #[test]
    fn shared_free_variable_limits_selection() {
        // R(x), S(w) disjoint; generic predicate x = w ties every chosen
        // row to the SAME free w, so only rows with equal x can coexist.
        let mut d = Database::new();
        for v in [1, 1, 2, 3] {
            d.insert_tuple("R", &[Value(v), Value(v * 10)]);
        }
        d.insert_tuple("S", &[Value(0)]);
        let q = parse_query("Q(*) :- R(x, u), S(w)").unwrap();
        let x = q.var_by_name("x").unwrap();
        let w = q.var_by_name("w").unwrap();
        let eq = OrderPredicate::between(x, CmpOp::Eq, w);
        let preds: Vec<&dyn GenericPredicate> = vec![&eq];
        // Residual on R alone: boundary ∅ (R and S share no vars). Rows of
        // R: x values {1, 2, 3} (dedup by tuples: (1,10),(2,20),(3,30)).
        // Max satisfiable B: rows with one common x ⇒ 1.
        let t = t_e_general(&q, &d, &[0], &preds, &OrderOracle, 20).unwrap();
        assert_eq!(t, 1);
        // Without the predicate the whole residual counts.
        let t_free = t_e_general(&q, &d, &[0], &[], &OrderOracle, 20).unwrap();
        assert_eq!(t_free, 3);
    }

    #[test]
    fn empty_subset_is_one_and_limits_enforced() {
        let mut d = Database::new();
        for v in 0..8 {
            d.insert_tuple("R", &[Value(v)]);
        }
        let q = parse_query("Q(*) :- R(x), S0(w)").unwrap();
        d.insert_tuple("S0", &[Value(0)]);
        let x = q.var_by_name("x").unwrap();
        let w = q.var_by_name("w").unwrap();
        let p = OrderPredicate::between(x, CmpOp::Lt, w);
        let preds: Vec<&dyn GenericPredicate> = vec![&p];
        assert_eq!(
            t_e_general(&q, &d, &[], &preds, &OrderOracle, 4).unwrap(),
            1
        );
        assert!(matches!(
            t_e_general(&q, &d, &[0], &preds, &OrderOracle, 4).unwrap_err(),
            EvalError::InstanceTooLarge { .. }
        ));
        // With a sufficient budget, all 8 rows can sit below one w.
        assert_eq!(
            t_e_general(&q, &d, &[0], &preds, &OrderOracle, 8).unwrap(),
            8
        );
    }

    #[test]
    fn custom_predicate_with_custom_oracle() {
        // A non-order predicate: parity(x) — x must be even. Oracle: a
        // constraint set is satisfiable iff every *bound* instance is even
        // (free instances can pick an even value).
        struct Even(VarId);
        impl GenericPredicate for Even {
            fn variables(&self) -> Vec<VarId> {
                vec![self.0]
            }
            fn eval(&self, args: &[Value]) -> bool {
                args[0].0 % 2 == 0
            }
        }
        struct EvenOracle;
        impl SatOracle for EvenOracle {
            fn satisfiable(&self, cs: &[Constraint<'_>]) -> bool {
                cs.iter().all(|c| match c.slots[0] {
                    Slot::Bound(v) => v.0 % 2 == 0,
                    Slot::Free(_) => true,
                })
            }
        }
        let mut d = Database::new();
        for v in [1, 2, 3, 4, 6] {
            d.insert_tuple("R", &[Value(v)]);
        }
        d.insert_tuple("S", &[Value(0)]);
        let q = parse_query("Q(*) :- R(x), S(w)").unwrap();
        let x = q.var_by_name("x").unwrap();
        let even = Even(x);
        let preds: Vec<&dyn GenericPredicate> = vec![&even];
        // Contained in the R-residual: filters to {2,4,6} ⇒ T = 3.
        let t = t_e_general(&q, &d, &[0], &preds, &EvenOracle, 20).unwrap();
        assert_eq!(t, 3);
    }
}
