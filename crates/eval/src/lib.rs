#![deny(unsafe_code)]
//! # dpcq-eval — join evaluation and `T_E` computation
//!
//! The sensitivity machinery of Dong & Yi (PODS 2022) reduces to evaluating
//! *residual queries with boundary aggregation*: for a subset `E` of atoms,
//!
//! ```text
//! T_E(I) = max_{t ∈ dom(∂q_E)} |q_E(I) ⋈ t|
//! ```
//!
//! which is "exactly an AJAR/FAQ query … with two semiring aggregations +
//! and max" (Section 3.1). For non-full queries, a projection is inserted
//! and the query gains a third aggregation (Section 6).
//!
//! This crate provides:
//!
//! * [`Factor`] — annotated relations (rows → counts) in a columnar,
//!   dictionary-code-compressed layout: hash joins with retained build
//!   indexes, sort-based semiring elimination, predicate filtering, and
//!   per-thread scratch arenas (see [`factor`] and the private `domain`
//!   module);
//! * [`Evaluator`] — the FAQ-style bucket-elimination engine computing
//!   `|q(I)|`, `T_E(I)` and boundary count factors, with predicate-aware
//!   bucket widening (every predicate is applied before its last variable
//!   is eliminated) and Corollary 5.1 handling of inequality predicates;
//! * [`FamilyEvaluator`] — whole-`T`-family evaluation through a shared
//!   intermediate-factor memo store, residual-isomorphism value caching,
//!   and work-stealing parallelism (see [`family`]);
//! * [`naive`] — a nested-loop reference evaluator used to validate the
//!   engine in tests;
//! * [`active_domain`] — the augmented active domain `Z+(q, I)` of
//!   Section 5.2 and comparison-predicate materialization;
//! * [`generic`] — the exponential-time algorithm of Section 5.1 for
//!   arbitrary computable predicates, parameterized by a satisfiability
//!   oracle, plus [`order_csp`], a difference-constraint solver serving as
//!   the oracle for inequality/comparison systems.

pub mod active_domain;
pub mod cancel;
pub(crate) mod delta;
pub(crate) mod domain;
pub mod error;
pub mod evaluator;
pub mod factor;
pub mod family;
pub mod generic;
pub mod naive;
pub mod order_csp;

pub use cancel::CancelToken;
pub use error::EvalError;
pub use evaluator::Evaluator;
pub use factor::{Factor, Semiring};
pub use family::{DeltaOutcome, FamilyCache, FamilyEvaluator, FamilyStats};
