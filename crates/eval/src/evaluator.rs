//! The FAQ-style bucket-elimination engine.
//!
//! [`Evaluator`] binds a [`ConjunctiveQuery`] to a [`Database`] and answers
//! the two questions the sensitivity machinery asks (Sections 3.1, 5, 6):
//!
//! * `|q(I)|` — the query's result size ([`Evaluator::count`]);
//! * `T_E(I) = max_t |q_E(I) ⋈ t|` — the maximum boundary multiplicity of a
//!   residual query ([`Evaluator::t_e`]), in the projected (distinct-count)
//!   form when the query is non-full.
//!
//! The engine eliminates non-boundary variables one bucket at a time,
//! joining the factors that contain the chosen variable and summing it out
//! in the appropriate semiring. Predicates are applied as soon as all of
//! their variables coexist in a factor; the bucket is *widened* (extra
//! factors pulled in) when a predicate would otherwise lose its last
//! variable, so predicate filters are never dropped silently. Predicates
//! not contained in the residual's variables are handled per Corollary 5.1:
//! inequalities are always satisfiable across the boundary and are dropped
//! exactly; *comparisons* would be unsound to drop, so the engine refuses
//! them (materialize via [`crate::active_domain`] first).
//!
//! The final `max` over the boundary is computed by a branch-and-bound
//! search over the remaining factors (sorted by weight, pruned by the
//! product of per-factor maxima) instead of materializing their join —
//! residuals of disconnected patterns otherwise force huge cross products
//! whose maximum is trivial.

use crate::domain::Domain;
use crate::error::EvalError;
use crate::factor::{vars_mask, Factor, Semiring};
use crate::family::{cached, restrict_rep, FactorStore, Sig, TF};
use dpcq_query::{ConjunctiveQuery, Predicate, Term, VarId};
use dpcq_relation::{Database, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A query bound to a database instance, ready to evaluate counts and
/// residual boundary multiplicities.
#[derive(Debug)]
pub struct Evaluator<'a> {
    query: &'a ConjunctiveQuery,
    db: &'a Database,
    /// Base factor per atom (no predicates applied), built once and shared
    /// (`Arc`) with residual evaluations instead of cloned into them.
    atom_factors: Vec<Arc<Factor>>,
}

impl<'a> Evaluator<'a> {
    /// Binds `query` to `db`, validating that every referenced relation
    /// exists with the right arity and materializing per-atom base factors.
    ///
    /// Every value appearing in any atom's rows is interned into one
    /// evaluation-scoped [`Domain`], frozen here and shared by every
    /// factor this evaluator (and any [`crate::FamilyEvaluator`] over it)
    /// will ever derive — the code-compressed kernel's single value map.
    pub fn new(query: &'a ConjunctiveQuery, db: &'a Database) -> Result<Self, EvalError> {
        let mut domain = Domain::new();
        let mut staged: Vec<(Vec<VarId>, Vec<u32>, Vec<u128>)> =
            Vec::with_capacity(query.num_atoms());
        for atom in query.atoms() {
            let rel = db
                .relation(&atom.relation)
                .ok_or_else(|| EvalError::UnknownRelation {
                    relation: atom.relation.clone(),
                })?;
            if rel.arity() != atom.arity() {
                return Err(EvalError::ArityMismatch {
                    relation: atom.relation.clone(),
                    atom_arity: atom.arity(),
                    relation_arity: rel.arity(),
                });
            }
            let vars = atom.variables();
            // Column slot of each term, resolved once ahead of the row
            // loop (a per-row `position()` scan shows up in profiles).
            let slots: Vec<Option<usize>> = atom
                .terms
                .iter()
                .map(|t| {
                    t.as_var()
                        .map(|v| vars.iter().position(|w| *w == v).expect("var interned"))
                })
                .collect();
            let mut codes: Vec<u32> = Vec::with_capacity(rel.len() * vars.len());
            let mut weights: Vec<u128> = Vec::with_capacity(rel.len());
            let mut bound: Vec<Option<Value>> = vec![None; vars.len()];
            'rows: for row in rel.iter() {
                bound.fill(None);
                for ((term, &val), slot) in atom.terms.iter().zip(row).zip(&slots) {
                    match term {
                        Term::Const(c) => {
                            if *c != val {
                                continue 'rows;
                            }
                        }
                        Term::Var(_) => {
                            let slot = slot.expect("variable term has a slot");
                            match bound[slot] {
                                None => bound[slot] = Some(val),
                                Some(prev) if prev != val => continue 'rows,
                                Some(_) => {}
                            }
                        }
                    }
                }
                for b in &bound {
                    codes.push(domain.intern(b.expect("all bound")));
                }
                weights.push(1);
            }
            staged.push((vars, codes, weights));
        }
        let domain = Arc::new(domain);
        let atom_factors = staged
            .into_iter()
            .map(|(vars, codes, weights)| {
                Arc::new(Factor::from_coded(
                    vars,
                    Arc::clone(&domain),
                    codes,
                    weights,
                    Semiring::Counting,
                ))
            })
            .collect();
        Ok(Evaluator {
            query,
            db,
            atom_factors,
        })
    }

    /// Binds `query` to `db` around already-built per-atom base factors —
    /// the delta-maintenance path: after `FamilyCache::apply_delta`
    /// patched the retained factors, the next evaluator must reuse them
    /// (and their patch domain) rather than re-stage from the relations,
    /// both to skip the O(instance) rebuild and because a fresh staging
    /// pass over the mutated database may intern codes in a different
    /// order than the append-only patch domain.
    ///
    /// The caller asserts that `atom_factors` equals what
    /// [`Evaluator::new`] would have built for `(query, db)` (same
    /// content; the column order of atom `i` is always
    /// `query.atoms()[i].variables()`, which both paths preserve).
    pub fn with_seed_factors(
        query: &'a ConjunctiveQuery,
        db: &'a Database,
        atom_factors: Vec<Arc<Factor>>,
    ) -> Result<Self, EvalError> {
        assert_eq!(
            atom_factors.len(),
            query.num_atoms(),
            "one seed factor per query atom"
        );
        debug_assert!(atom_factors
            .iter()
            .zip(query.atoms())
            .all(|(f, a)| f.vars() == a.variables()));
        Ok(Evaluator {
            query,
            db,
            atom_factors,
        })
    }

    /// The bound query.
    pub fn query(&self) -> &ConjunctiveQuery {
        self.query
    }

    /// The bound database.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// The base factor of atom `i` (constants filtered, repeated variables
    /// unified; no predicates applied). Used by statistics consumers such
    /// as elastic sensitivity's maximum-frequency computation.
    pub fn atom_factor(&self, i: usize) -> &Factor {
        self.atom_factors[i].as_ref()
    }

    /// The base factor of atom `i` as a shareable handle.
    pub(crate) fn atom_factor_arc(&self, i: usize) -> Arc<Factor> {
        Arc::clone(&self.atom_factors[i])
    }

    /// `|q(I)|`: the number of results of the (possibly projected) query,
    /// with all predicates applied.
    pub fn count(&self) -> Result<u128, EvalError> {
        let all: Vec<usize> = (0..self.query.num_atoms()).collect();
        match self.query.projection() {
            None => {
                // Inequality predicates: inclusion–exclusion keeps the
                // aggregation width low (safe here regardless of
                // connectivity — the boundary is empty, so every term
                // reduces to scalars).
                if let Some(c) = self.t_e_inclusion_exclusion(None, &all, &BTreeSet::new()) {
                    return Ok(c);
                }
                let f = self.residual_factor(None, &all, &BTreeSet::new(), false)?;
                Ok(f.scalar())
            }
            Some(o) => {
                let keep: BTreeSet<VarId> = o.iter().copied().collect();
                let f = self.residual_factor(None, &all, &keep, true)?;
                let drop: Vec<VarId> = keep.into_iter().collect();
                Ok(f.eliminate(&drop, Semiring::Counting).scalar())
            }
        }
    }

    /// `T_E(I)` for the residual query on `subset = E` (atom indices).
    ///
    /// For full queries this is the paper's Section 3.1 definition; for
    /// non-full queries the projected variant of Section 6
    /// (`max_t |π_{o_E}(q_E(I) ⋈ t)|`). Predicates are handled per
    /// Section 5 (see the module docs).
    pub fn t_e(&self, subset: &[usize]) -> Result<u128, EvalError> {
        self.t_e_memo(None, subset)
    }

    /// [`Evaluator::t_e`] with an optional shared-intermediate store (the
    /// family-evaluation entry point, see [`crate::family`]).
    pub(crate) fn t_e_memo(
        &self,
        memo: Option<&FactorStore>,
        subset: &[usize],
    ) -> Result<u128, EvalError> {
        if subset.is_empty() {
            return Ok(1); // T_∅ = 1 by convention
        }
        self.check_comparisons(subset)?;
        if self.query.residual_output(subset).is_some() {
            return Ok(self.boundary_factor_memo(memo, subset)?.max_annotation());
        }
        let boundary: BTreeSet<VarId> = self.query.boundary(subset).into_iter().collect();
        // Connected residuals whose predicates are inequalities evaluate
        // through inclusion–exclusion: each term is a predicate-free FAQ
        // with fused aggregation, keeping the width low (no bucket
        // widening, no materialized predicate joins).
        if self.query.subset_connected(subset) {
            if let Some(max) = self.t_e_inclusion_exclusion(memo, subset, &boundary) {
                return Ok(max);
            }
        }
        let (factors, pending) = self.eliminate_to_keep(memo, subset, &boundary, false)?;
        if let Some(max) = max_product(&factors, &pending, self.query.num_vars()) {
            return Ok(max);
        }
        // Branch-and-bound exceeded its node budget (adversarial shapes);
        // fall back to the materialized join.
        Ok(finalize_join(factors, pending, Semiring::Counting).max_annotation())
    }

    /// Inclusion–exclusion over inequality predicates:
    /// `count[all ≠ hold] = Σ_{S ⊆ preds} (−1)^{|S|} count[equalities S]`,
    /// where each term merges the equated variables and evaluates a
    /// predicate-free counting FAQ (fast: fused join-eliminate, no
    /// widening). Returns `None` when the residual's contained predicates
    /// are not all binary inequalities (or there are too many of them), in
    /// which case the caller uses the direct path.
    fn t_e_inclusion_exclusion(
        &self,
        memo: Option<&FactorStore>,
        subset: &[usize],
        boundary: &BTreeSet<VarId>,
    ) -> Option<u128> {
        const MAX_IE_PREDS: usize = 14;
        let contained = self.query.contained_predicates(subset);
        let mut ie_pairs: Vec<(usize, usize)> = Vec::new();
        let mut single: Vec<Predicate> = Vec::new();
        for p in contained {
            let vars = p.variables();
            match vars.len() {
                0 | 1 => single.push(p),
                2 if p.is_inequality() => ie_pairs.push((vars[0].0, vars[1].0)),
                _ => return None,
            }
        }
        if ie_pairs.len() > MAX_IE_PREDS {
            return None;
        }

        // Base factors with the single-variable filters applied; atoms
        // without applicable filters are shared, not cloned, and filtered
        // atoms are memoized across the family.
        let base: Vec<TF> = subset
            .iter()
            .map(|&i| {
                let af = self.atom_factor(i);
                let mut applicable: Vec<Predicate> = single
                    .iter()
                    .filter(|p| p.variables().iter().all(|v| af.mentions(*v)))
                    .copied()
                    .collect();
                if applicable.is_empty() {
                    return TF {
                        f: self.atom_factor_arc(i),
                        atoms: vec![i as u32],
                        preds: Vec::new(),
                    };
                }
                applicable.sort_unstable();
                let f = cached(
                    memo,
                    || Sig {
                        atoms: vec![i as u32],
                        keep: var_ids_sorted(af.vars()),
                        boolean: false,
                        preds: applicable.clone(),
                        rep: Vec::new(),
                    },
                    || {
                        let mut f = af.clone();
                        f.filter(&applicable);
                        f
                    },
                );
                TF {
                    f,
                    atoms: vec![i as u32],
                    preds: applicable,
                }
            })
            .collect();

        let nv = self.query.num_vars();
        let boundary_vec: Vec<VarId> = boundary.iter().copied().collect();
        // Boundary valuations key on dictionary codes: every factor of this
        // evaluation shares one domain, so code tuples identify value
        // tuples across all inclusion–exclusion terms.
        let mut acc: dpcq_relation::FxHashMap<Box<[u32]>, i128> =
            dpcq_relation::FxHashMap::default();
        let mut key_buf: Vec<u32> = vec![0; boundary_vec.len()];

        // Distinct predicate subsets can induce the same variable
        // partition; their signed contributions collapse to one Möbius
        // coefficient per partition (at most Bell(#vars) partitions vs
        // 2^κ subsets — a large saving for the all-pairs-distinct
        // pattern queries). Enumerate subsets cheaply, then evaluate each
        // partition once.
        fn find(rep: &mut [usize], x: usize) -> usize {
            if rep[x] != x {
                let r = find(rep, rep[x]);
                rep[x] = r;
            }
            rep[x]
        }
        // Canonical ingredients of the per-partition *final* signature:
        // the joined-and-boundary-aggregated term below is itself a
        // `Sig` (join the subset's atoms, filter the applied predicates,
        // merge per `rep`, eliminate to the boundary representatives).
        let mut atoms_key: Vec<u32> = subset.iter().map(|&i| i as u32).collect();
        atoms_key.sort_unstable();
        let mut applied_preds: Vec<Predicate> = base
            .iter()
            .flat_map(|tf| tf.preds.iter().copied())
            .collect();
        applied_preds.sort_unstable();
        applied_preds.dedup();
        let subset_vars: Vec<VarId> = self.query.subset_vars(subset).into_iter().collect();

        let mut partitions: dpcq_relation::FxHashMap<Vec<usize>, i128> =
            dpcq_relation::FxHashMap::default();
        for mask in 0u32..(1 << ie_pairs.len()) {
            let mut rep: Vec<usize> = (0..nv).collect();
            for (bit, &(a, b)) in ie_pairs.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    let (ra, rb) = (find(&mut rep, a), find(&mut rep, b));
                    let (lo, hi) = (ra.min(rb), ra.max(rb));
                    rep[hi] = lo;
                }
            }
            for x in 0..nv {
                find(&mut rep, x);
            }
            let sign: i128 = if mask.count_ones() % 2 == 0 { 1 } else { -1 };
            *partitions.entry(rep).or_insert(0) += sign;
        }

        let single_partition = partitions.len() == 1;
        for (rep, coeff) in partitions {
            if coeff == 0 {
                continue;
            }
            let identity = rep.iter().enumerate().all(|(i, &r)| i == r);
            let factors: Vec<TF> = base
                .iter()
                .map(|tf| {
                    let avars = self.query.atoms()[tf.atoms[0] as usize].variables();
                    let rpairs = restrict_rep(&rep, &avars);
                    if rpairs.is_empty() {
                        // The partition is the identity on this atom's
                        // columns: share the (possibly filtered) base.
                        return TF {
                            f: Arc::clone(&tf.f),
                            atoms: tf.atoms.clone(),
                            preds: tf.preds.clone(),
                        };
                    }
                    let f = cached(
                        memo,
                        || {
                            let mut keep: Vec<u32> =
                                avars.iter().map(|v| rep[v.0] as u32).collect();
                            keep.sort_unstable();
                            keep.dedup();
                            Sig {
                                atoms: tf.atoms.clone(),
                                keep,
                                boolean: false,
                                preds: tf.preds.clone(),
                                rep: rpairs.clone(),
                            }
                        },
                        || tf.f.merge_columns(&rep, Semiring::Counting),
                    );
                    TF {
                        f,
                        atoms: tf.atoms.clone(),
                        preds: tf.preds.clone(),
                    }
                })
                .collect();
            let keep: BTreeSet<VarId> = boundary_vec.iter().map(|b| VarId(rep[b.0])).collect();
            let reduced = eliminate_pure(
                memo,
                factors,
                &keep,
                Semiring::Counting,
                if identity { None } else { Some(&rep) },
                self.query,
            );
            let fs: Vec<Arc<Factor>> = reduced.into_iter().map(|t| t.f).collect();
            // The joined, boundary-aggregated term is itself a `Sig`:
            // memoize it so re-deriving a `T` value over a warm store —
            // in particular after a delta pass, which patches this entry
            // like any other — costs a lookup plus a scan of boundary
            // rows instead of a re-join of the residual.
            let term = cached(
                memo,
                || Sig {
                    atoms: atoms_key.clone(),
                    keep: keep.iter().map(|v| v.0 as u32).collect(),
                    boolean: false,
                    preds: applied_preds.clone(),
                    rep: restrict_rep(&rep, &subset_vars),
                },
                || {
                    let combined = join_all(&fs, Semiring::Counting);
                    let drop: Vec<VarId> = combined
                        .vars()
                        .iter()
                        .copied()
                        .filter(|v| !keep.contains(v))
                        .collect();
                    combined.eliminate(&drop, Semiring::Counting)
                },
            );

            if single_partition && coeff == 1 {
                // No surviving inclusion–exclusion terms (e.g. a
                // predicate-free subset): the term already aggregates one
                // row per boundary valuation, so `T` is its max weight —
                // skip the signed hash-map accumulation entirely.
                let max = (0..term.len()).map(|i| term.weight(i)).max().unwrap_or(0);
                return Some(max);
            }

            let positions: Vec<usize> = boundary_vec
                .iter()
                .map(|b| {
                    term.vars()
                        .iter()
                        .position(|v| *v == VarId(rep[b.0]))
                        .expect("boundary representative appears in aggregated term")
                })
                .collect();
            for i in 0..term.len() {
                let row = term.row_codes(i);
                for (slot, &p) in key_buf.iter_mut().zip(&positions) {
                    *slot = row[p];
                }
                let w = i128::try_from(term.weight(i)).expect("count fits in i128");
                *acc.entry(key_buf.clone().into_boxed_slice()).or_insert(0) += coeff * w;
            }
        }

        let max = acc.values().copied().max().unwrap_or(0);
        debug_assert!(
            acc.values().all(|&v| v >= 0),
            "inclusion-exclusion produced a negative count"
        );
        Some(max.max(0) as u128)
    }

    /// The boundary count factor behind `T_E`: one row per boundary
    /// valuation `t` with annotation `|q_E(I) ⋈ t|` (projected counts for
    /// non-full queries). `T_E` is its maximum annotation; the paper's
    /// witness `t_E(I)` is its argmax (see [`Evaluator::t_e_witness`]).
    pub fn boundary_factor(&self, subset: &[usize]) -> Result<Factor, EvalError> {
        self.boundary_factor_memo(None, subset)
    }

    /// [`Evaluator::boundary_factor`] with an optional shared store.
    fn boundary_factor_memo(
        &self,
        memo: Option<&FactorStore>,
        subset: &[usize],
    ) -> Result<Factor, EvalError> {
        if subset.is_empty() {
            return Ok(Factor::unit());
        }
        self.check_comparisons(subset)?;
        let boundary: BTreeSet<VarId> = self.query.boundary(subset).into_iter().collect();
        match self.query.residual_output(subset) {
            None => self.residual_factor(memo, subset, &boundary, false),
            Some(o) => {
                let mut keep = boundary.clone();
                keep.extend(o.iter().copied());
                let f = self.residual_factor(memo, subset, &keep, true)?;
                if o.is_empty() {
                    // π_∅ of a non-empty set is {⟨⟩}: annotation 1 per
                    // boundary valuation that has any completion.
                    return Ok(f.to_boolean());
                }
                let drop: Vec<VarId> = o
                    .iter()
                    .copied()
                    .filter(|v| !boundary.contains(v))
                    .collect();
                Ok(f.eliminate(&drop, Semiring::Counting))
            }
        }
    }

    /// The witness `t_E(I)`: a boundary valuation achieving `T_E(I)`,
    /// together with the value. `None` when the boundary factor is empty.
    pub fn t_e_witness(&self, subset: &[usize]) -> Result<Option<(Vec<Value>, u128)>, EvalError> {
        let f = self.boundary_factor(subset)?;
        Ok(f.iter()
            .max_by_key(|&(_, w)| w)
            .map(|(row, w)| (row.to_vec(), w)))
    }

    /// Refuses comparison predicates that span the residual boundary
    /// (Section 5.2: they must be materialized, not dropped).
    fn check_comparisons(&self, subset: &[usize]) -> Result<(), EvalError> {
        let vars = self.query.subset_vars(subset);
        for p in self.query.predicates() {
            if p.is_comparison() && !p.variables().iter().all(|v| vars.contains(v)) {
                return Err(EvalError::UncontainedComparison {
                    predicate: p.display(|v| self.query.var_name(v)).to_string(),
                });
            }
        }
        Ok(())
    }

    /// Fully materialized residual factor over `keep`.
    fn residual_factor(
        &self,
        memo: Option<&FactorStore>,
        subset: &[usize],
        keep: &BTreeSet<VarId>,
        distinct: bool,
    ) -> Result<Factor, EvalError> {
        let semiring = if distinct {
            Semiring::Boolean
        } else {
            Semiring::Counting
        };
        let (factors, pending) = self.eliminate_to_keep(memo, subset, keep, distinct)?;
        Ok(finalize_join(factors, pending, semiring))
    }

    /// Core bucket elimination: evaluates the join of `subset`'s atoms,
    /// applying all predicates contained in `var(q_subset)`, eliminating
    /// every variable outside `keep`. Returns the remaining factors (over
    /// subsets of `keep`) and the still-pending predicates (whose
    /// variables are all in `keep`).
    ///
    /// `distinct` selects the Boolean semiring for the inner elimination
    /// (set semantics — used by the projected queries of Section 6).
    fn eliminate_to_keep(
        &self,
        memo: Option<&FactorStore>,
        subset: &[usize],
        keep: &BTreeSet<VarId>,
        distinct: bool,
    ) -> Result<(Vec<TF>, Vec<Predicate>), EvalError> {
        let semiring = if distinct {
            Semiring::Boolean
        } else {
            Semiring::Counting
        };
        let boolean = semiring == Semiring::Boolean;
        let mut pending: Vec<Predicate> = self.query.contained_predicates(subset);
        let mut factors: Vec<TF> = Vec::with_capacity(subset.len());
        for &i in subset {
            let af = self.atom_factor(i);
            let mut applicable = take_applicable(&mut pending, af.vars());
            if applicable.is_empty() {
                factors.push(TF {
                    f: self.atom_factor_arc(i),
                    atoms: vec![i as u32],
                    preds: Vec::new(),
                });
                continue;
            }
            applicable.sort_unstable();
            let f = cached(
                memo,
                || Sig {
                    atoms: vec![i as u32],
                    keep: var_ids_sorted(af.vars()),
                    boolean,
                    preds: applicable.clone(),
                    rep: Vec::new(),
                },
                || {
                    let mut f = af.clone();
                    f.filter(&applicable);
                    f
                },
            );
            factors.push(TF {
                f,
                atoms: vec![i as u32],
                preds: applicable,
            });
        }

        let mut elim: BTreeSet<VarId> = self
            .query
            .subset_vars(subset)
            .into_iter()
            .filter(|v| !keep.contains(v))
            .collect();

        while let Some(v) = pick_elimination_var(&elim, &factors) {
            // Gather every factor containing v, then widen so each pending
            // predicate mentioning v has all its variables present.
            let mut in_bucket: Vec<bool> = factors.iter().map(|t| t.f.mentions(v)).collect();
            loop {
                let covered: BTreeSet<VarId> = factors
                    .iter()
                    .zip(&in_bucket)
                    .filter(|(_, &inb)| inb)
                    .flat_map(|(t, _)| t.f.vars().iter().copied())
                    .collect();
                let mut widened = false;
                for p in pending.iter().filter(|p| p.variables().contains(&v)) {
                    for pv in p.variables() {
                        if !covered.contains(&pv) {
                            let j = factors
                                .iter()
                                .enumerate()
                                .position(|(j, t)| !in_bucket[j] && t.f.mentions(pv))
                                .expect("predicate var bound by some atom of the subset");
                            in_bucket[j] = true;
                            widened = true;
                        }
                    }
                }
                if !widened {
                    break;
                }
            }

            // Split the bucket off, leaving the others in place.
            let mut bucket: Vec<TF> = Vec::new();
            let mut rest: Vec<TF> = Vec::new();
            for (t, inb) in factors.drain(..).zip(in_bucket) {
                if inb {
                    bucket.push(t);
                } else {
                    rest.push(t);
                }
            }
            // The joined factor's variable set (the union) is known before
            // joining, so predicate routing, the dead-variable set, and
            // the memo signature can all be derived up front — a cache hit
            // skips the join entirely.
            let joined_vars: Vec<VarId> = bucket
                .iter()
                .flat_map(|t| t.f.vars().iter().copied())
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let mut applicable = take_applicable(&mut pending, &joined_vars);
            applicable.sort_unstable();

            // Variables that die with this bucket: not kept, not referenced
            // by any remaining factor or pending predicate.
            let dead: Vec<VarId> = joined_vars
                .iter()
                .copied()
                .filter(|u| {
                    elim.contains(u)
                        && !rest.iter().any(|t| t.f.mentions(*u))
                        && !pending.iter().any(|p| p.variables().contains(u))
                })
                .collect();
            debug_assert!(dead.contains(&v), "progress: v must be eliminable");

            let atoms = union_atoms(&bucket);
            let preds = union_preds(&bucket, &applicable);
            let f = cached(
                memo,
                || Sig {
                    atoms: atoms.clone(),
                    keep: joined_vars
                        .iter()
                        .filter(|u| !dead.contains(u))
                        .map(|u| u.0 as u32)
                        .collect(),
                    boolean,
                    preds: preds.clone(),
                    rep: Vec::new(),
                },
                || {
                    // Join smallest factors first to keep intermediates
                    // small.
                    let mut fs: Vec<Arc<Factor>> =
                        bucket.iter().map(|t| Arc::clone(&t.f)).collect();
                    fs.sort_by_key(|f| f.len());
                    let mut joined = unshare(join_all(&fs, semiring));
                    joined.filter(&applicable);
                    joined.eliminate(&dead, semiring)
                },
            );
            for u in dead {
                elim.remove(&u);
            }
            rest.push(TF { f, atoms, preds });
            factors = rest;
        }
        Ok((factors, pending))
    }
}

/// Sorted ids of a variable list (memo-signature component).
fn var_ids_sorted(vars: &[VarId]) -> Vec<u32> {
    let mut ids: Vec<u32> = vars.iter().map(|v| v.0 as u32).collect();
    ids.sort_unstable();
    ids
}

/// The sorted union of the tagged factors' base atoms.
fn union_atoms(bucket: &[TF]) -> Vec<u32> {
    let mut atoms: Vec<u32> = bucket
        .iter()
        .flat_map(|t| t.atoms.iter().copied())
        .collect();
    atoms.sort_unstable();
    atoms.dedup();
    atoms
}

/// The canonically sorted, deduplicated union of applied predicates
/// (the inclusion–exclusion path applies a single-variable filter to
/// every atom mentioning its variable, so inputs can repeat a predicate;
/// deduplicating keeps the memo key canonical).
fn union_preds(bucket: &[TF], extra: &[Predicate]) -> Vec<Predicate> {
    let mut preds: Vec<Predicate> = bucket
        .iter()
        .flat_map(|t| t.preds.iter().copied())
        .chain(extra.iter().copied())
        .collect();
    preds.sort_unstable();
    preds.dedup();
    preds
}

/// Predicate-free bucket elimination with fused aggregation: repeatedly
/// joins the factors containing the cheapest elimination variable and
/// drops every variable that dies with the bucket *during the final join*
/// (the intermediate join is never materialized). Used by the
/// inclusion–exclusion terms, which carry no pending predicates by
/// construction; `rep` is the IE term's column-merge partition (`None`
/// for the identity), threaded into the memo signatures.
fn eliminate_pure(
    memo: Option<&FactorStore>,
    mut factors: Vec<TF>,
    keep: &BTreeSet<VarId>,
    semiring: Semiring,
    rep: Option<&[usize]>,
    query: &ConjunctiveQuery,
) -> Vec<TF> {
    let boolean = semiring == Semiring::Boolean;
    let mut elim: BTreeSet<VarId> = factors
        .iter()
        .flat_map(|t| t.f.vars().iter().copied())
        .filter(|v| !keep.contains(v))
        .collect();
    while let Some(v) = pick_elimination_var(&elim, &factors) {
        let mut bucket: Vec<TF> = Vec::new();
        let mut rest: Vec<TF> = Vec::new();
        for t in factors.drain(..) {
            if t.f.mentions(v) {
                bucket.push(t);
            } else {
                rest.push(t);
            }
        }
        let dead: Vec<VarId> = bucket
            .iter()
            .flat_map(|t| t.f.vars().iter().copied())
            .filter(|u| elim.contains(u) && !rest.iter().any(|t| t.f.mentions(*u)))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let atoms = union_atoms(&bucket);
        let preds = union_preds(&bucket, &[]);
        let f = cached(
            memo,
            || {
                let mut keep_ids: Vec<u32> = bucket
                    .iter()
                    .flat_map(|t| t.f.vars().iter().copied())
                    .filter(|u| !dead.contains(u))
                    .map(|u| u.0 as u32)
                    .collect();
                keep_ids.sort_unstable();
                keep_ids.dedup();
                // Restrict the partition to the atoms' original columns:
                // two IE terms agreeing there share the factor.
                let rep_pairs = rep
                    .map(|r| {
                        let orig: Vec<VarId> = atoms
                            .iter()
                            .flat_map(|&i| query.atoms()[i as usize].variables())
                            .collect();
                        restrict_rep(r, &orig)
                    })
                    .unwrap_or_default();
                Sig {
                    atoms: atoms.clone(),
                    keep: keep_ids,
                    boolean,
                    preds: preds.clone(),
                    rep: rep_pairs,
                }
            },
            || {
                let mut fs: Vec<Arc<Factor>> = bucket.iter().map(|t| Arc::clone(&t.f)).collect();
                fs.sort_by_key(|f| f.len());
                match fs.len() {
                    1 => fs[0].eliminate(&dead, semiring),
                    n => {
                        // Fuse the elimination into the final (largest)
                        // join so the intermediate never materializes.
                        let prefix = join_all(&fs[..n - 1], semiring);
                        prefix.join_eliminate(&fs[n - 1], &dead, semiring)
                    }
                }
            },
        );
        for u in dead {
            elim.remove(&u);
        }
        rest.push(TF { f, atoms, preds });
        factors = rest;
    }
    factors
}

/// Joins the remaining factors (cross products if disconnected) and
/// applies the leftover predicates.
fn finalize_join(factors: Vec<TF>, mut pending: Vec<Predicate>, semiring: Semiring) -> Factor {
    let mut fs: Vec<Arc<Factor>> = factors.into_iter().map(|t| t.f).collect();
    fs.sort_by_key(|f| f.len());
    let mut result = unshare(join_all(&fs, semiring));
    let applicable = take_applicable(&mut pending, result.vars());
    result.filter(&applicable);
    debug_assert!(
        pending.is_empty(),
        "all contained predicates must have been applied"
    );
    result
}

/// Joins the factors left to right (the unit factor for an empty list; a
/// shared handle to the single factor for one). Callers pre-sort when a
/// smallest-first order matters.
fn join_all(fs: &[Arc<Factor>], semiring: Semiring) -> Arc<Factor> {
    match fs.len() {
        0 => Arc::new(Factor::unit()),
        1 => Arc::clone(&fs[0]),
        _ => {
            let mut acc = fs[0].join(&fs[1], semiring);
            for f in &fs[2..] {
                acc = acc.join(f, semiring);
            }
            Arc::new(acc)
        }
    }
}

/// An owned factor out of a possibly-shared handle (clones only when the
/// factor is genuinely shared, e.g. a single-element [`join_all`]).
fn unshare(f: Arc<Factor>) -> Factor {
    Arc::try_unwrap(f).unwrap_or_else(|shared| (*shared).clone())
}

/// Node budget for the final-stage branch-and-bound (rows examined);
/// beyond this the caller falls back to the materialized join.
const MAX_PRODUCT_NODE_BUDGET: u64 = 50_000_000;

/// `max over joint rows of Π weights`, subject to shared-variable
/// consistency and the pending predicates — without materializing the
/// join. Factors' rows are visited in descending weight order, pruned by
/// the product of the remaining factors' maxima; the search achieves the
/// global upper bound immediately on typical boundary factors and on
/// cross products of set-like factors.
///
/// Returns `None` if the node budget is exhausted.
fn max_product(factors: &[TF], preds: &[Predicate], num_vars: usize) -> Option<u128> {
    if factors.is_empty() {
        return Some(1); // the unit factor; pending preds are var-free here
    }
    if factors.iter().any(|t| t.f.is_empty()) {
        return Some(0);
    }
    // Fast path: a single factor with no predicates left.
    if factors.len() == 1 && preds.is_empty() {
        return Some(factors[0].f.max_annotation());
    }
    // Descending-weight orders are cached per factor, so shared factors
    // sort once across every branch-and-bound that visits them.
    let orders: Vec<&[u32]> = factors.iter().map(|t| t.f.rows_by_weight_desc()).collect();
    // suffix_max[i] = Π_{j ≥ i} max weight of factor j.
    let mut suffix_max = vec![1u128; factors.len() + 1];
    for i in (0..factors.len()).rev() {
        suffix_max[i] = suffix_max[i + 1].checked_mul(factors[i].f.max_annotation())?;
    }
    // The search binds dictionary codes (single-word equality); the
    // factors of one evaluation share a domain *up to prefix extension*
    // (delta maintenance grows the patch domain append-only, so factors
    // retained earlier carry prefixes of the longest one). Codes agree
    // wherever they overlap; decode through the longest domain so every
    // code resolves.
    let domain = factors
        .iter()
        .map(|t| t.f.domain())
        .max_by_key(|d| d.values().len())
        .expect("non-empty factor list");
    debug_assert!(
        factors.iter().all(|t| {
            let d = t.f.domain();
            domain.values()[..d.values().len()] == *d.values()
        }),
        "max_product factor domains must be prefix-consistent"
    );

    struct Search<'s> {
        factors: &'s [TF],
        orders: &'s [&'s [u32]],
        suffix_max: &'s [u128],
        preds: &'s [Predicate],
        domain: &'s crate::domain::Domain,
        bound: Vec<Option<u32>>,
        best: u128,
        nodes: u64,
    }

    impl Search<'_> {
        /// Returns `false` when the node budget is exhausted.
        fn recurse(&mut self, i: usize, acc: u128) -> bool {
            if i == self.factors.len() {
                self.best = self.best.max(acc);
                return true;
            }
            if acc.saturating_mul(self.suffix_max[i]) <= self.best {
                return true; // cannot improve
            }
            let factor = self.factors[i].f.as_ref();
            let vars = factor.vars().to_vec();
            'rows: for &ri in self.orders[i] {
                self.nodes += 1;
                if self.nodes > MAX_PRODUCT_NODE_BUDGET {
                    return false;
                }
                let ri = ri as usize;
                let w = factor.weight(ri);
                // Rows are weight-sorted: once even this row cannot beat
                // `best`, no later row can.
                if acc.saturating_mul(w).saturating_mul(self.suffix_max[i + 1]) <= self.best {
                    break;
                }
                let row = factor.row_codes(ri);
                let mut newly: Vec<VarId> = Vec::new();
                for (v, &code) in vars.iter().zip(row) {
                    match self.bound[v.0] {
                        None => {
                            self.bound[v.0] = Some(code);
                            newly.push(*v);
                        }
                        Some(prev) if prev != code => {
                            for u in newly.drain(..) {
                                self.bound[u.0] = None;
                            }
                            continue 'rows;
                        }
                        Some(_) => {}
                    }
                }
                // Predicates that just became fully bound.
                let ok = self.preds.iter().all(|p| {
                    let pv = p.variables();
                    if !pv.iter().any(|v| newly.contains(v)) {
                        return true; // checked earlier or not yet bound
                    }
                    if pv.iter().any(|v| self.bound[v.0].is_none()) {
                        return true; // not yet fully bound
                    }
                    p.eval(|v| self.domain.value(self.bound[v.0].expect("checked bound")))
                });
                let go_on = !ok || self.recurse(i + 1, acc.checked_mul(w).expect("count overflow"));
                for u in newly {
                    self.bound[u.0] = None;
                }
                if !go_on {
                    return false;
                }
            }
            true
        }
    }

    let mut search = Search {
        factors,
        orders: &orders,
        suffix_max: &suffix_max,
        preds,
        domain,
        bound: vec![None; num_vars],
        best: 0,
        nodes: 0,
    };
    search.recurse(0, 1).then_some(search.best)
}

/// Removes and returns the predicates whose variables are all columns of a
/// factor with variable list `vars` (bitset membership tests, with a
/// linear-scan fallback for variable ids past the mask width).
fn take_applicable(pending: &mut Vec<Predicate>, vars: &[VarId]) -> Vec<Predicate> {
    if pending.is_empty() {
        return Vec::new();
    }
    let mask = vars_mask(vars);
    let contains = |v: &VarId| {
        if v.0 < 128 {
            mask & (1u128 << v.0) != 0
        } else {
            vars.contains(v)
        }
    };
    let mut applicable = Vec::new();
    pending.retain(|p| {
        if p.variables().iter().all(contains) {
            applicable.push(*p);
            false
        } else {
            true
        }
    });
    applicable
}

/// Chooses the next variable to eliminate: the one whose bucket (factors
/// mentioning it) is cheapest by total row count. Returns `None` when no
/// elimination variable remains.
fn pick_elimination_var(elim: &BTreeSet<VarId>, factors: &[TF]) -> Option<VarId> {
    elim.iter().copied().min_by_key(|&v| {
        let cost: usize = factors
            .iter()
            .filter(|t| t.f.mentions(v))
            .map(|t| t.f.len())
            .sum();
        (cost, v.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcq_query::{parse_query, CqBuilder};
    use dpcq_relation::vals;

    fn path_db() -> Database {
        // Edge = {(1,2),(2,3),(3,4),(1,3)}
        let mut db = Database::new();
        for e in [[1, 2], [2, 3], [3, 4], [1, 3]] {
            db.insert_tuple("Edge", &[Value(e[0]), Value(e[1])]);
        }
        db
    }

    #[test]
    fn count_single_atom() {
        let q = parse_query("Q(*) :- Edge(x, y)").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 4);
    }

    #[test]
    fn count_two_hop_paths() {
        // 1->2->3, 2->3->4, 1->3->4: three 2-paths.
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z)").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 3);
    }

    #[test]
    fn count_with_inequality() {
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z), x != z").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 3); // no 2-cycles in this instance
    }

    #[test]
    fn count_projected() {
        // Distinct sources of 2-paths: {1, 2}.
        let q = parse_query("Q(x) :- Edge(x, y), Edge(y, z)").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 2);
    }

    #[test]
    fn count_with_constant_atom() {
        let q = parse_query("Q(*) :- Edge(1, y)").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 2); // (1,2) and (1,3)
    }

    #[test]
    fn count_repeated_var_atom() {
        let mut db = path_db();
        db.insert_tuple("Edge", &vals![5, 5]);
        let q = parse_query("Q(*) :- Edge(x, x)").unwrap();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 1);
    }

    #[test]
    fn te_of_empty_subset_is_one() {
        let q = parse_query("Q(*) :- Edge(x, y)").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.t_e(&[]).unwrap(), 1);
    }

    #[test]
    fn te_single_atom_is_max_degree() {
        // q = Edge(x,y) ⋈ Edge(y,z); E = {0}: boundary {y} (shared with
        // atom 1). T_E = max over y of #x with (x,y) ∈ Edge = max in-degree.
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z)").unwrap();
        let db = path_db(); // in-degrees: 2:1, 3:2, 4:1
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.t_e(&[0]).unwrap(), 2);
        // E = {1}: boundary {y}; max out-degree = 2 (node 1).
        assert_eq!(ev.t_e(&[1]).unwrap(), 2);
    }

    #[test]
    fn te_full_subset_has_empty_boundary() {
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z)").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        // Boundary empty: T = |q(I)| = 3.
        assert_eq!(ev.t_e(&[0, 1]).unwrap(), 3);
    }

    #[test]
    fn te_witness_matches_max() {
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z)").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        let (row, w) = ev.t_e_witness(&[0]).unwrap().unwrap();
        assert_eq!(w, 2);
        assert_eq!(row, vec![Value(3)]); // y = 3 has in-degree 2
    }

    #[test]
    fn uncontained_comparison_is_refused() {
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z), x < z").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        // Full count is fine (all predicate vars present).
        assert_eq!(ev.count().unwrap(), 3);
        // Residual on atom 0 loses z: comparison spans the boundary.
        assert!(matches!(
            ev.t_e(&[0]).unwrap_err(),
            EvalError::UncontainedComparison { .. }
        ));
    }

    #[test]
    fn uncontained_inequality_is_dropped_exactly() {
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z), x != z").unwrap();
        let db = path_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        // Corollary 5.1: T on atom 0 ignores x != z (z free over Z).
        assert_eq!(ev.t_e(&[0]).unwrap(), 2);
    }

    #[test]
    fn projected_te_counts_distinct() {
        // q = π_x (Edge(x,y) ⋈ Edge(y,z)); E = {0}: o_E = {x}, ∂ = {y}.
        // T = max over y of #distinct x with (x,y) ∈ Edge.
        let mut db = path_db();
        db.insert_tuple("Edge", &vals![2, 4]); // in-neighbors of 4: {3, 2}
        let q = parse_query("Q(x) :- Edge(x, y), Edge(y, z)").unwrap();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.t_e(&[0]).unwrap(), 2);
        // E = {1}: o_E = {} (x not in atom 1), ∂ = {y}: T = 1 (π_∅ of a
        // non-empty set is the empty tuple).
        assert_eq!(ev.t_e(&[1]).unwrap(), 1);
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let q = parse_query("Q(*) :- Nope(x, y)").unwrap();
        let db = path_db();
        assert!(matches!(
            Evaluator::new(&q, &db).unwrap_err(),
            EvalError::UnknownRelation { .. }
        ));
        let q2 = parse_query("Q(*) :- Edge(x, y, z)").unwrap();
        assert!(matches!(
            Evaluator::new(&q2, &db).unwrap_err(),
            EvalError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn triangle_count_on_k4() {
        // Complete directed graph on 4 vertices (no self-loops): every
        // ordered triple of distinct vertices forms a directed triangle,
        // so the CQ count is 4·3·2 = 24.
        let mut db = Database::new();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    db.insert_tuple("Edge", &[Value(i), Value(j)]);
                }
            }
        }
        let q = parse_query(
            "Q(*) :- Edge(x1,x2), Edge(x2,x3), Edge(x1,x3), x1 != x2, x2 != x3, x1 != x3",
        )
        .unwrap();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 24);
    }

    #[test]
    fn disconnected_query_is_cross_product() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1]);
        db.insert_tuple("R", &vals![2]);
        db.insert_tuple("S", &vals![7]);
        let q = parse_query("Q(*) :- R(x), S(y)").unwrap();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 2);
    }

    #[test]
    fn predicate_spanning_disconnected_atoms() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1]);
        db.insert_tuple("R", &vals![7]);
        db.insert_tuple("S", &vals![7]);
        let q = parse_query("Q(*) :- R(x), S(y), x != y").unwrap();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 1);
    }

    #[test]
    fn empty_relation_gives_zero() {
        let mut db = Database::new();
        db.create_relation("Edge", 2);
        let q = parse_query("Q(*) :- Edge(x, y), Edge(y, z)").unwrap();
        let ev = Evaluator::new(&q, &db).unwrap();
        assert_eq!(ev.count().unwrap(), 0);
        assert_eq!(ev.t_e(&[0]).unwrap(), 0);
    }

    #[test]
    fn four_clique_te_values() {
        // Triangle query on the symmetric K4.
        let mut db = Database::new();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    db.insert_tuple("Edge", &[Value(i), Value(j)]);
                }
            }
        }
        let mut b = CqBuilder::new();
        let (x1, x2, x3) = (b.var("x1"), b.var("x2"), b.var("x3"));
        b.atom("Edge", [x1, x2]);
        b.atom("Edge", [x2, x3]);
        b.atom("Edge", [x1, x3]);
        let q = b.build().unwrap();
        let ev = Evaluator::new(&q, &db).unwrap();
        // E = {1,2}: residual Edge(x2,x3) ⋈ Edge(x1,x3), boundary {x1,x2};
        // at x1 = x2 every out-neighbor of x1 joins: T = 3.
        assert_eq!(ev.t_e(&[1, 2]).unwrap(), 3);
        // Single-atom residual: boundary is both of its vars: T = 1.
        assert_eq!(ev.t_e(&[0]).unwrap(), 1);
    }

    #[test]
    fn disconnected_residual_with_cross_predicates() {
        // T over two disconnected atoms whose boundary is everything:
        // the value is 1 iff a predicate-satisfying combination exists
        // (exercises the branch-and-bound final stage).
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1]);
        db.insert_tuple("S", &vals![1]);
        db.insert_tuple("T", &vals![1]);
        db.insert_tuple("T", &vals![2]);
        let q = parse_query("Q(*) :- R(x), S(y), T(x), T(y), x != y").unwrap();
        let ev = Evaluator::new(&q, &db).unwrap();
        // Subset {0,1} = R(x), S(y): boundary {x,y}; contained pred x != y
        // kills the only combination (1,1) ⇒ T = 0.
        assert_eq!(ev.t_e(&[0, 1]).unwrap(), 0);
        // Without the predicate constraint, subset {2,3} = T(x), T(y):
        // combinations (1,2) or (2,1) satisfy x != y ⇒ T = 1.
        assert_eq!(ev.t_e(&[2, 3]).unwrap(), 1);
    }

    #[test]
    fn max_product_matches_materialized_join() {
        // Randomized: B&B max equals max annotation of the real join.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..40 {
            let mut db = Database::new();
            for _ in 0..12 {
                db.insert_tuple(
                    "A",
                    &[Value(rng.gen_range(0..4)), Value(rng.gen_range(0..4))],
                );
                db.insert_tuple(
                    "B",
                    &[Value(rng.gen_range(0..4)), Value(rng.gen_range(0..4))],
                );
                db.insert_tuple("C", &[Value(rng.gen_range(0..4))]);
            }
            let q = parse_query("Q(*) :- A(x, y), B(z, w), C(z), x != w").unwrap();
            let ev = Evaluator::new(&q, &db).unwrap();
            // Subset {0,1}: A and B disconnected, boundary = all vars.
            let via_bb = ev.t_e(&[0, 1]).unwrap();
            let via_join = ev.boundary_factor(&[0, 1]).unwrap().max_annotation();
            assert_eq!(via_bb, via_join, "trial {trial}");
            // Subset {1,2}: connected via z.
            let via_bb2 = ev.t_e(&[1, 2]).unwrap();
            let via_join2 = ev.boundary_factor(&[1, 2]).unwrap().max_annotation();
            assert_eq!(via_bb2, via_join2, "trial {trial}");
        }
    }
}
