//! Semi-naive delta maintenance for memoized `T`-family state.
//!
//! A cached [`Sig`] denotes
//! `π^Σ_keep (σ_preds (⋈_{i ∈ atoms} Fᵢ))` with columns merged per `rep`
//! (see [`crate::family`]) — an expression *multilinear* in the atom
//! factors in the Counting semiring: joins distribute over bag union, and
//! filter / column-merge / eliminate are row-wise linear maps. A batch
//! mutation of relation `R` replaces every copy `Fᵢ` over `R` by
//! `Fᵢ ± Δᵢ`, so the change to the cached factor expands semi-naively
//! over the non-empty subsets `S` of the mutated copies:
//!
//! ```text
//! Δ(sig) = Σ_{∅ ≠ S ⊆ copies} (±1)^{|S|} π^Σ_keep σ_preds ⋈ (Δᵢ if i ∈ S else Fᵢ)
//! ```
//!
//! with coefficient `+1` for insert batches and `(−1)^{|S|}` for remove
//! batches (each batch mutates in one direction, so no general signed
//! algebra is needed: every term is an ordinary Counting join, only its
//! *contribution* is signed). Each term joins the (tiny) delta-tuple
//! factors against the retained build sides first, so its size is bounded
//! by the delta's matches rather than the relation — the whole point of
//! maintaining instead of rebuilding.
//!
//! The accumulated signed rows patch the stored factor copy-on-write
//! through [`Factor::patch_signed`] (a sorted two-pointer merge; every
//! aggregated factor is code-lexicographically sorted). When a delta
//! would be larger than a rebuild — Boolean (set-semantics) entries,
//! oversized intermediate joins, too many mutated copies, or arithmetic
//! overflow — the entry is *evicted* instead and recomputed lazily from
//! the patched seed factors, which is always consistent because the memo
//! key determines the factor's content.
//!
//! Everything here operates strictly **pre-noise**: deltas touch factor
//! and `T`-value state only, never `RawAnswer` / `Released` (see
//! `docs/INVARIANTS.md`; dpa rule R1 covers this module).

use crate::domain::Domain;
use crate::factor::{Factor, Semiring};
use crate::family::Sig;
use dpcq_query::{ConjunctiveQuery, Term, VarId};
use dpcq_relation::{FxHashMap, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Cap on the number of mutated-relation copies of one signature expanded
/// semi-naively (`2^copies − 1` terms); entries joining more copies of the
/// mutated relation are evicted instead.
const MAX_DELTA_COPIES: usize = 10;

/// Row cap for any intermediate while evaluating one delta term, relative
/// to the stored factor: a delta outgrowing this is "larger than a
/// rebuild" and the entry is evicted instead.
fn row_limit(stored_rows: usize) -> usize {
    4096 + stored_rows.saturating_mul(8)
}

/// A staged per-atom delta: the atom's variable order, flat code rows,
/// and per-row weights — the raw-factor triple `Factor::from_coded`
/// takes.
pub(crate) type StagedDelta = (Vec<VarId>, Vec<u32>, Vec<u128>);

/// Stages the delta rows of atom `atom_idx` for a batch of mutated
/// tuples: exactly the constant-filtering / repeated-variable-unification
/// row loop of `Evaluator::new`, applied to the batch instead of the
/// stored relation. Tuples violating the atom's constraints contribute
/// nothing (their delta is invisible to this atom). New values intern
/// into `domain`, which must start as a copy of the shared patch domain
/// so codes stay prefix-consistent with every retained factor.
pub(crate) fn stage_atom_delta(
    query: &ConjunctiveQuery,
    atom_idx: usize,
    tuples: &[Vec<Value>],
    domain: &mut Domain,
) -> StagedDelta {
    let atom = &query.atoms()[atom_idx];
    let vars = atom.variables();
    let slots: Vec<Option<usize>> = atom
        .terms
        .iter()
        .map(|t| {
            t.as_var()
                .map(|v| vars.iter().position(|w| *w == v).expect("var interned"))
        })
        .collect();
    let mut codes: Vec<u32> = Vec::with_capacity(tuples.len() * vars.len());
    let mut weights: Vec<u128> = Vec::with_capacity(tuples.len());
    let mut bound: Vec<Option<Value>> = vec![None; vars.len()];
    'rows: for row in tuples {
        debug_assert_eq!(row.len(), atom.arity(), "delta tuple arity");
        bound.fill(None);
        for ((term, &val), slot) in atom.terms.iter().zip(row).zip(&slots) {
            match term {
                Term::Const(c) => {
                    if *c != val {
                        continue 'rows;
                    }
                }
                Term::Var(_) => {
                    let slot = slot.expect("variable term has a slot");
                    match bound[slot] {
                        None => bound[slot] = Some(val),
                        Some(prev) if prev != val => continue 'rows,
                        Some(_) => {}
                    }
                }
            }
        }
        for b in &bound {
            codes.push(domain.intern(b.expect("all bound")));
        }
        weights.push(1);
    }
    (vars, codes, weights)
}

/// The outcome of computing one cached entry's delta.
pub(crate) enum SigDelta {
    /// No mutated copy participates in this entry: it is already current.
    Unaffected,
    /// Signed row patch, sorted by row codes, zero deltas dropped.
    Patch(Vec<(Box<[u32]>, i128)>),
    /// Maintaining this entry would cost more than recomputing it (or is
    /// unsound for its semiring): drop it and let it rebuild lazily.
    Evict,
}

/// Computes the signed row delta of one memoized signature under a batch
/// mutation, per the module-level expansion. `old_atoms` are the
/// *pre-mutation* seed factors (indexed by query atom), `atom_deltas` the
/// per-atom delta factors (`None` for atoms the batch does not reach).
pub(crate) fn sig_delta(
    query: &ConjunctiveQuery,
    sig: &Sig,
    stored: &Factor,
    old_atoms: &[Arc<Factor>],
    atom_deltas: &[Option<Arc<Factor>>],
    insert: bool,
) -> SigDelta {
    let copies: Vec<usize> = sig
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, &a)| atom_deltas[a as usize].is_some())
        .map(|(p, _)| p)
        .collect();
    if copies.is_empty() {
        return SigDelta::Unaffected;
    }
    // Boolean (set-semantics) entries are not multilinear in the atoms;
    // they cannot be patched by signed counting rows.
    if sig.boolean || copies.len() > MAX_DELTA_COPIES {
        return SigDelta::Evict;
    }

    let num_vars = query.num_vars();
    let rep_table: Option<Vec<usize>> = (!sig.rep.is_empty()).then(|| {
        let mut table: Vec<usize> = (0..num_vars).collect();
        for &(v, r) in &sig.rep {
            table[v as usize] = r as usize;
        }
        table
    });
    let keep: BTreeSet<VarId> = sig.keep.iter().map(|&k| VarId(k as usize)).collect();
    let limit = row_limit(stored.len());
    let stored_vars = stored.vars();

    let mut acc: FxHashMap<Box<[u32]>, i128> = FxHashMap::default();
    let mut in_subset = vec![false; sig.atoms.len()];
    for mask in 1u32..(1u32 << copies.len()) {
        let sign: i128 = if insert || mask.count_ones() % 2 == 0 {
            1
        } else {
            -1
        };
        in_subset.fill(false);
        for (k, &p) in copies.iter().enumerate() {
            if mask & (1 << k) != 0 {
                in_subset[p] = true;
            }
        }
        // Delta factors first (they are small), then the retained sides,
        // preferring joins that share a variable over cross products.
        let mut parts: Vec<&Factor> = Vec::with_capacity(sig.atoms.len());
        for (p, &a) in sig.atoms.iter().enumerate() {
            if in_subset[p] {
                parts.push(atom_deltas[a as usize].as_deref().expect("copy has delta"));
            }
        }
        for (p, &a) in sig.atoms.iter().enumerate() {
            if !in_subset[p] {
                parts.push(&old_atoms[a as usize]);
            }
        }
        let mut joined: Factor = parts[0].clone();
        let mut remaining: Vec<&Factor> = parts[1..].to_vec();
        while !remaining.is_empty() {
            let pick = remaining
                .iter()
                .position(|f| f.vars().iter().any(|v| joined.mentions(*v)))
                .unwrap_or(0);
            let next = remaining.swap_remove(pick);
            joined = joined.join(next, Semiring::Counting);
            if joined.len() > limit {
                return SigDelta::Evict;
            }
        }
        // Predicates apply in the original variable space (before the
        // column merge), exactly as the producers built the entry.
        joined.filter(&sig.preds);
        if let Some(table) = &rep_table {
            joined = joined.merge_columns(table, Semiring::Counting);
        }
        let drop: Vec<VarId> = joined
            .vars()
            .iter()
            .copied()
            .filter(|v| !keep.contains(v))
            .collect();
        let joined = joined.eliminate(&drop, Semiring::Counting);
        if joined.is_empty() {
            continue;
        }
        // Accumulate keyed by the stored factor's column order.
        if joined.vars().len() != stored_vars.len() {
            return SigDelta::Evict;
        }
        let Some(perm) = stored_vars
            .iter()
            .map(|v| joined.vars().iter().position(|w| w == v))
            .collect::<Option<Vec<usize>>>()
        else {
            return SigDelta::Evict;
        };
        let mut key_buf: Vec<u32> = vec![0; perm.len()];
        for i in 0..joined.len() {
            let row = joined.row_codes(i);
            for (slot, &p) in key_buf.iter_mut().zip(&perm) {
                *slot = row[p];
            }
            let Ok(w) = i128::try_from(joined.weight(i)) else {
                return SigDelta::Evict;
            };
            let entry = acc.entry(key_buf.clone().into_boxed_slice()).or_insert(0);
            let Some(next) = entry.checked_add(sign * w) else {
                return SigDelta::Evict;
            };
            *entry = next;
        }
    }
    let mut rows: Vec<(Box<[u32]>, i128)> = acc.into_iter().filter(|(_, d)| *d != 0).collect();
    rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    SigDelta::Patch(rows)
}
