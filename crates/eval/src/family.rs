//! Shared-intermediate evaluation of whole `T`-families.
//!
//! Residual sensitivity (paper Eqs. (19)–(21)) needs `T_F(I)` for every
//! subset `F = [n] − E − E'` — up to `2^n` residual queries per release.
//! Evaluating each subset independently repeats enormous amounts of work:
//! the subsets of a family overlap heavily, so the same base factors, the
//! same filtered atom factors, and the same partial eliminations are
//! rebuilt over and over. [`FamilyEvaluator`] answers the whole family
//! through two layers of sharing:
//!
//! 1. **A factor memo store** ([`FactorStore`]). Every intermediate factor
//!    the bucket-elimination engine produces is a *pure function* of
//!    `(atom subset, retained variables, semiring, applied predicates,
//!    column-merge partition)`: it equals
//!    `π^Σ_keep (σ_preds (⋈_{i ∈ atoms} Fᵢ))` in the chosen semiring,
//!    regardless of the order in which variables were eliminated — semiring
//!    aggregations commute, and the engine only drops a variable once
//!    nothing else (factor or pending predicate) mentions it. That tuple
//!    is therefore a sound memo key ([`Sig`]); the store maps it to an
//!    `Arc<Factor>` behind a sharded mutex so base atom factors, filtered
//!    atoms, and common sub-eliminations are computed once and shared
//!    across subsets *and* across worker threads. (Column *order* of a
//!    cached factor can differ from what a caller would have produced
//!    locally; every consumer resolves columns by `VarId`, so only the
//!    content matters.)
//!
//! 2. **A residual-isomorphism value cache.** Two subsets whose residual
//!    queries are isomorphic — identical atoms/boundary/predicates/
//!    projection up to a variable renaming — have equal `T` values on the
//!    same database. Self-join families are full of such twins (all six
//!    single-atom residuals of the 4-clique query are one class). Each
//!    subset is keyed by a canonical serialization of its residual
//!    ([`canonical_subset_key`]), minimized over atom orderings within
//!    same-relation groups, and only one representative per class is
//!    evaluated. The key additionally exploits *relation column
//!    symmetries*: when the stored relation is invariant under a column
//!    permutation (checked exactly, e.g. a symmetric edge relation with
//!    `R = Rᵀ`), atoms may be rewritten through that permutation, which
//!    collapses e.g. the out-star / in-star / path two-atom residuals of
//!    the triangle query into a single class on undirected graphs.
//!
//! [`FamilyEvaluator::t_family`] combines both layers with **work-stealing
//! parallelism**: the isomorphism classes are sorted by estimated cost
//! (width · base rows, largest first) and worker threads pull the next
//! class off a shared atomic index, so no thread strands behind a chunk of
//! expensive subsets the way a fixed chunking would.
//!
//! Under both layers sits the columnar factor kernel (see
//! [`crate::factor`]): all subsets of a family evaluate against one frozen
//! evaluation domain, memoized `Arc<Factor>`s carry their retained join
//! indexes and cached weight orders across subsets *and* threads, and each
//! worker reuses its own thread-local scratch arena — so the steady state
//! of a family evaluation probes shared indexes instead of rebuilding
//! them and allocates only the factors it actually retains.

use crate::cancel::CancelToken;
use crate::delta::{sig_delta, stage_atom_delta, SigDelta, StagedDelta};
use crate::domain::Domain;
use crate::error::EvalError;
use crate::evaluator::Evaluator;
use crate::factor::{Factor, Semiring};
use dpcq_query::{ConjunctiveQuery, Predicate, Term, VarId};
use dpcq_relation::{FxHashMap, Value, VersionStamp};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards in a [`FactorStore`].
const SHARDS: usize = 16;

/// Cap on the atom-ordering search when canonicalizing a subset: families
/// with larger self-join groups fall back to the (still sound) identity
/// ordering, which only collapses syntactically identical residuals.
const MAX_CANON_ORDERINGS: usize = 1440;

/// Cap on the total serialization count (atom orderings × per-atom column
/// permutations); above it, column symmetries are ignored for the subset.
const MAX_CANON_SERIALIZATIONS: usize = 8192;

/// Largest relation arity for which column symmetries are searched
/// (`arity!` permutations are checked exactly against the stored rows).
const MAX_SYM_ARITY: usize = 3;

/// Memoization key of one intermediate factor: the factor equals
/// `π^Σ_keep (σ_preds (⋈_{i ∈ atoms} Fᵢ))` with atom columns merged per
/// `rep`, which determines its content completely (see the module docs for
/// why this is sound).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Sig {
    /// Sorted indices of the base atoms joined into this factor.
    pub atoms: Vec<u32>,
    /// Sorted ids of the variables the factor retains.
    pub keep: Vec<u32>,
    /// Whether aggregation runs in the Boolean semiring.
    pub boolean: bool,
    /// The predicates applied so far, in canonical (`Ord`) order.
    pub preds: Vec<Predicate>,
    /// The column-merge partition restricted to the atoms' original
    /// variables: sorted `(var, representative)` pairs with
    /// `var ≠ representative`; empty for the identity partition.
    pub rep: Vec<(u32, u32)>,
}

/// A factor tagged with the provenance that determines its content —
/// enough to build the [`Sig`] of anything derived from it.
pub(crate) struct TF {
    /// The factor (shared with the memo store when one is active).
    pub f: Arc<Factor>,
    /// Sorted base atom indices this factor derives from.
    pub atoms: Vec<u32>,
    /// Canonically sorted predicates already applied.
    pub preds: Vec<Predicate>,
}

/// The partition `rep` restricted to `vars`, as sorted non-identity pairs.
pub(crate) fn restrict_rep(rep: &[usize], vars: &[VarId]) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = vars
        .iter()
        .filter(|v| rep[v.0] != v.0)
        .map(|v| (v.0 as u32, rep[v.0] as u32))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// A sharded signature → factor cache. Lookups lock only one shard, and
/// misses compute *outside* the lock (two threads racing on the same
/// signature may duplicate work, but never serialize unrelated lookups
/// behind a long join).
#[derive(Debug)]
pub struct FactorStore {
    shards: Vec<Mutex<FxHashMap<Sig, Arc<Factor>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for FactorStore {
    fn default() -> Self {
        FactorStore::new()
    }
}

impl FactorStore {
    /// An empty store.
    pub fn new() -> Self {
        FactorStore {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, sig: &Sig) -> &Mutex<FxHashMap<Sig, Arc<Factor>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        sig.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// The cached factor for `sig`, computing and inserting it on a miss.
    pub(crate) fn get_or_compute(&self, sig: Sig, compute: impl FnOnce() -> Factor) -> Arc<Factor> {
        let shard = self.shard(&sig);
        if let Some(f) = shard.lock().expect("factor cache lock poisoned").get(&sig) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            dpcq_obs::cache_access(dpcq_obs::CacheKind::Factor, true);
            return Arc::clone(f);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        dpcq_obs::cache_access(dpcq_obs::CacheKind::Factor, false);
        let f = {
            let _span = dpcq_obs::Span::enter(dpcq_obs::Stage::FactorBuild);
            Arc::new(compute())
        };
        let mut guard = shard.lock().expect("factor cache lock poisoned");
        Arc::clone(guard.entry(sig).or_insert(f))
    }

    /// `(hits, misses)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Builds a factor through the optional memo store: with `None` the
/// signature is never constructed and the factor is computed directly.
pub(crate) fn cached(
    memo: Option<&FactorStore>,
    sig: impl FnOnce() -> Sig,
    compute: impl FnOnce() -> Factor,
) -> Arc<Factor> {
    match memo {
        None => Arc::new(compute()),
        Some(store) => store.get_or_compute(sig(), compute),
    }
}

/// Cache-effectiveness counters of a [`FamilyEvaluator`] /
/// [`FamilyCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FamilyStats {
    /// Intermediate-factor cache hits.
    pub factor_hits: u64,
    /// Intermediate-factor cache misses (factors actually computed).
    pub factor_misses: u64,
    /// Distinct residual values computed (isomorphism classes evaluated).
    pub values_computed: u64,
    /// `T` lookups answered from the isomorphism value cache.
    pub value_hits: u64,
    /// Successful [`FamilyCache::apply_delta`] passes.
    pub delta_applied: u64,
    /// Delta fallbacks: whole-cache refusals plus per-entry evictions
    /// (entries whose delta would have cost more than a rebuild).
    pub delta_fallback: u64,
    /// Total signed rows merged into memoized factors by delta passes.
    pub delta_rows: u64,
}

/// The outcome of [`FamilyCache::apply_delta`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The cache was patched in place (possibly evicting some entries)
    /// and is valid for the post-mutation instance.
    Applied {
        /// Signed rows merged into memoized factors.
        rows: u64,
    },
    /// The cache could not be maintained incrementally (never seeded, or
    /// query shape mismatch); the owner must retire it.
    Fallback,
}

/// The delta-maintenance base state: the per-atom seed factors and the
/// shared patch [`Domain`] every retained factor's codes are consistent
/// with. Recorded on first use by an evaluator, patched in lockstep with
/// the memo store by [`FamilyCache::apply_delta`].
#[derive(Debug)]
struct DeltaSeeds {
    /// Pre-predicate base factor per query atom (what `Evaluator::new`
    /// builds), in the patch domain.
    atoms: Vec<Arc<Factor>>,
    /// The evolving shared code domain: factors retained earlier carry
    /// prefixes of it, so codes compare consistently across all of them.
    domain: Arc<Domain>,
}

/// The shareable cache state of a [`FamilyEvaluator`]: the intermediate-
/// factor memo store plus the residual-isomorphism value cache.
///
/// Both caches are pure functions of `(query, read-set contents)`: a
/// [`Sig`] keys a factor by query structure only, a canonical subset key
/// determines a `T` value only together with the instance it was computed
/// on, and both depend on the instance **only through the relations the
/// query's atoms mention** (its *read set* — atom factors, boundary
/// counts, and the column symmetries folded into the canonical keys are
/// all built from those relations alone). A `FamilyCache` may therefore
/// be reused across evaluators — and hence across releases — **while the
/// query and the read-set relations are byte-identical**; mutations of
/// other relations are irrelevant to it.
///
/// [`FamilyCache::for_stamp`] records the read set's
/// [`VersionStamp`] at build time so owners can *revalidate* a shared
/// `Arc` cache ([`FamilyCache::is_valid_for`]) instead of unconditionally
/// rebuilding: `PrivateEngine` keeps one stamped cache per query shape,
/// drops a shape only when a mutation touches its read set, and checks
/// the stamp again on every reuse as a second line of defense.
///
/// ## Reuse after unrelated mutations: the domain reconcile path
///
/// A cache retained across a mutation of an *unrelated* relation is
/// content-valid, but its memoized factors carry the frozen code
/// [`Domain`](crate::domain) of the evaluator that built them — and a
/// *fresh* evaluator over the mutated database interns a (possibly
/// larger) domain that includes any newly inserted values. The two meet
/// inside the columnar kernel: a join between factors with different
/// domains merges them and re-encodes one side once (see
/// `Factor::join_core`), so cached factors combine with newly built ones
/// transparently. Cached `T` *values* are plain numbers and need no
/// reconciliation at all.
#[derive(Debug, Default)]
pub struct FamilyCache {
    store: FactorStore,
    values: Mutex<FxHashMap<Vec<u64>, u128>>,
    value_hits: AtomicU64,
    /// The read-set stamp the cache is valid for (`None` for caches
    /// whose validity is managed entirely by the caller, e.g. β sweeps
    /// over one immutable database). Advanced by
    /// [`FamilyCache::apply_delta`] when a mutation is absorbed in place.
    stamp: Mutex<Option<VersionStamp>>,
    /// Delta-maintenance base state, recorded by the first evaluator that
    /// uses the cache (see [`FamilyCache::apply_delta`]).
    seeds: Mutex<Option<DeltaSeeds>>,
    delta_applied: AtomicU64,
    delta_fallback: AtomicU64,
    delta_rows: AtomicU64,
}

impl FamilyCache {
    /// An empty cache with no recorded stamp: the caller owns validity
    /// (it must not reuse the cache after any read-set relation changed).
    pub fn new() -> Self {
        FamilyCache::default()
    }

    /// An empty cache recording the read-set [`VersionStamp`] it is about
    /// to be filled against, enabling [`FamilyCache::is_valid_for`]
    /// revalidation on later reuse.
    pub fn for_stamp(stamp: VersionStamp) -> Self {
        FamilyCache {
            stamp: Mutex::new(Some(stamp)),
            ..FamilyCache::default()
        }
    }

    /// The stamp the cache is currently valid for, if any.
    pub fn stamp(&self) -> Option<VersionStamp> {
        self.stamp.lock().expect("stamp lock poisoned").clone()
    }

    /// Whether the cache may be reused against a database whose read set
    /// currently stamps as `current`: true iff the cache recorded a stamp
    /// and it matches. Unstamped caches always report `false` here —
    /// their owners opted into manual validity management and cannot be
    /// revalidated mechanically.
    pub fn is_valid_for(&self, current: &VersionStamp) -> bool {
        self.stamp.lock().expect("stamp lock poisoned").as_ref() == Some(current)
    }

    /// Records the delta-maintenance seeds from an evaluator's base atom
    /// factors, once: the first evaluator to use the cache donates its
    /// per-atom factors and frozen domain as the patch base. Later
    /// evaluators over the identical read set build byte-identical
    /// factors (interning is deterministic), so first-wins is safe.
    pub(crate) fn maybe_seed(&self, ev: &Evaluator<'_>) {
        let n = ev.query().num_atoms();
        if n == 0 {
            return;
        }
        let mut guard = self.seeds.lock().expect("delta seed lock poisoned");
        if guard.is_some() {
            return;
        }
        let atoms: Vec<Arc<Factor>> = (0..n).map(|i| ev.atom_factor_arc(i)).collect();
        let domain = Arc::clone(atoms[0].domain());
        *guard = Some(DeltaSeeds { atoms, domain });
    }

    /// The current per-atom seed factors, if the cache has been seeded —
    /// the base a post-delta evaluator must be built from (fresh staging
    /// over the mutated database may intern a differently ordered domain,
    /// which would not be code-compatible with the patched factors).
    pub fn seed_factors(&self) -> Option<Vec<Arc<Factor>>> {
        self.seeds
            .lock()
            .expect("delta seed lock poisoned")
            .as_ref()
            .map(|s| s.atoms.clone())
    }

    /// Absorbs a batch mutation of `relation` (all `tuples` inserted, or
    /// all removed, per `insert`) into the cached state **in place**:
    /// seed atom factors and every memoized intermediate factor are
    /// patched copy-on-write by their semi-naive deltas (see
    /// [`crate::delta`]), entries whose delta would cost more than a
    /// rebuild are evicted for lazy recomputation, and the residual value
    /// cache is cleared (individual `T` values are cheap to re-derive
    /// from the patched factors). On success the cache's stamp becomes
    /// `new_stamp` and the cache is exactly what a rebuild against the
    /// mutated read set would have produced.
    ///
    /// [`DeltaOutcome::Fallback`] (never seeded, query-shape mismatch, or
    /// a seed patch failure) leaves the cache **untouched**; the owner
    /// must retire it and rebuild wholesale.
    ///
    /// `tuples` must be deduplicated and *effective* (inserts absent
    /// before the batch, removes present before it) — the engine's
    /// mutation path guarantees this; a non-effective remove fails the
    /// seed patch and falls back, a non-effective insert would
    /// double-count.
    ///
    /// Deltas operate strictly pre-noise: only factor and `T`-value state
    /// is touched, never `RawAnswer`/`Released` (see `docs/INVARIANTS.md`).
    pub fn apply_delta(
        &self,
        query: &ConjunctiveQuery,
        relation: &str,
        tuples: &[Vec<Value>],
        insert: bool,
        new_stamp: Option<VersionStamp>,
    ) -> DeltaOutcome {
        let _span = dpcq_obs::Span::enter(dpcq_obs::Stage::DeltaApply);
        let mut seeds_guard = self.seeds.lock().expect("delta seed lock poisoned");
        let seeds = match seeds_guard.as_mut() {
            Some(s) if s.atoms.len() == query.num_atoms() => s,
            _ => {
                self.delta_fallback.fetch_add(1, Ordering::Relaxed);
                dpcq_obs::inc_event(dpcq_obs::Event::DeltaFallback);
                return DeltaOutcome::Fallback;
            }
        };

        // Stage the batch against each atom over a copy of the patch
        // domain (append-only interning keeps existing codes stable).
        let mut domain = (*seeds.domain).clone();
        let mut staged: Vec<Option<StagedDelta>> = Vec::with_capacity(seeds.atoms.len());
        for (i, atom) in query.atoms().iter().enumerate() {
            if atom.relation == relation {
                let (vars, codes, weights) = stage_atom_delta(query, i, tuples, &mut domain);
                staged.push((!weights.is_empty()).then_some((vars, codes, weights)));
            } else {
                staged.push(None);
            }
        }
        if staged.iter().all(Option::is_none) {
            // The batch is invisible to every atom (absorbed by constant
            // filters / repeated-variable constraints): all cached
            // content — including `T` values — is already current.
            *self.stamp.lock().expect("stamp lock poisoned") = new_stamp;
            self.delta_applied.fetch_add(1, Ordering::Relaxed);
            dpcq_obs::inc_event(dpcq_obs::Event::DeltaApplied);
            return DeltaOutcome::Applied { rows: 0 };
        }

        let grown = domain.values().len() > seeds.domain.values().len();
        let domain = if grown {
            Arc::new(domain)
        } else {
            Arc::clone(&seeds.domain)
        };

        // Per-atom delta factors: ordinary non-negative Counting factors
        // (the sign lives in the subset expansion / seed patch).
        let atom_deltas: Vec<Option<Arc<Factor>>> = staged
            .into_iter()
            .map(|s| {
                s.map(|(vars, codes, weights)| {
                    Arc::new(Factor::from_coded(
                        vars,
                        Arc::clone(&domain),
                        codes,
                        weights,
                        Semiring::Counting,
                    ))
                })
            })
            .collect();

        // Patch the seeds first: a failure here (a remove of a tuple the
        // seed does not hold, or weight overflow) must leave the cache
        // untouched, so nothing is committed until every seed patched.
        let sign: i128 = if insert { 1 } else { -1 };
        let mut new_atoms: Vec<Arc<Factor>> = Vec::with_capacity(seeds.atoms.len());
        let mut total_rows: u64 = 0;
        for (old, delta) in seeds.atoms.iter().zip(&atom_deltas) {
            let old_rewrapped;
            let old: &Factor = if grown {
                old_rewrapped = old.with_domain(Arc::clone(&domain));
                &old_rewrapped
            } else {
                old
            };
            match delta {
                None => new_atoms.push(Arc::new(old.clone())),
                Some(d) => {
                    let mut rows: Vec<(Box<[u32]>, i128)> = Vec::with_capacity(d.len());
                    for r in 0..d.len() {
                        let Ok(w) = i128::try_from(d.weight(r)) else {
                            self.delta_fallback.fetch_add(1, Ordering::Relaxed);
                            dpcq_obs::inc_event(dpcq_obs::Event::DeltaFallback);
                            return DeltaOutcome::Fallback;
                        };
                        rows.push((d.row_codes(r).into(), sign * w));
                    }
                    if old.vars() != d.vars() {
                        self.delta_fallback.fetch_add(1, Ordering::Relaxed);
                        dpcq_obs::inc_event(dpcq_obs::Event::DeltaFallback);
                        return DeltaOutcome::Fallback;
                    }
                    match old.patch_signed(&rows, Arc::clone(&domain)) {
                        Some(f) => {
                            total_rows += rows.len() as u64;
                            new_atoms.push(Arc::new(f));
                        }
                        None => {
                            self.delta_fallback.fetch_add(1, Ordering::Relaxed);
                            dpcq_obs::inc_event(dpcq_obs::Event::DeltaFallback);
                            return DeltaOutcome::Fallback;
                        }
                    }
                }
            }
        }

        // From here on failures are per-entry evictions, never wholesale:
        // an evicted entry rebuilds lazily from the patched seeds, which
        // is consistent because a `Sig` fully determines its content.
        let old_atoms: Vec<Arc<Factor>> = if grown {
            seeds
                .atoms
                .iter()
                .map(|f| Arc::new(f.with_domain(Arc::clone(&domain))))
                .collect()
        } else {
            seeds.atoms.clone()
        };
        let mut evicted: u64 = 0;
        for shard in &self.store.shards {
            let mut guard = shard.lock().expect("factor cache lock poisoned");
            let sigs: Vec<Sig> = guard.keys().cloned().collect();
            for sig in sigs {
                let stored = Arc::clone(&guard[&sig]);
                match sig_delta(query, &sig, &stored, &old_atoms, &atom_deltas, insert) {
                    SigDelta::Unaffected => {
                        if grown {
                            guard.insert(sig, Arc::new(stored.with_domain(Arc::clone(&domain))));
                        }
                    }
                    SigDelta::Patch(rows) => {
                        match stored.patch_signed(&rows, Arc::clone(&domain)) {
                            Some(f) => {
                                total_rows += rows.len() as u64;
                                guard.insert(sig, Arc::new(f));
                            }
                            None => {
                                evicted += 1;
                                guard.remove(&sig);
                            }
                        }
                    }
                    SigDelta::Evict => {
                        evicted += 1;
                        guard.remove(&sig);
                    }
                }
            }
        }

        seeds.atoms = new_atoms;
        seeds.domain = Arc::clone(&domain);
        drop(seeds_guard);
        // Residual values are instance-dependent scalars; recomputing them
        // from the patched factors is cheap relative to guessing which
        // isomorphism classes a delta reaches.
        self.values
            .lock()
            .expect("value cache lock poisoned")
            .clear();
        *self.stamp.lock().expect("stamp lock poisoned") = new_stamp;
        self.delta_applied.fetch_add(1, Ordering::Relaxed);
        self.delta_rows.fetch_add(total_rows, Ordering::Relaxed);
        self.delta_fallback.fetch_add(evicted, Ordering::Relaxed);
        dpcq_obs::inc_event(dpcq_obs::Event::DeltaApplied);
        DeltaOutcome::Applied { rows: total_rows }
    }

    /// Cache-effectiveness counters accumulated over every evaluator that
    /// shared this cache.
    pub fn stats(&self) -> FamilyStats {
        let (factor_hits, factor_misses) = self.store.counters();
        FamilyStats {
            factor_hits,
            factor_misses,
            values_computed: self.values.lock().expect("value cache lock poisoned").len() as u64,
            value_hits: self.value_hits.load(Ordering::Relaxed),
            delta_applied: self.delta_applied.load(Ordering::Relaxed),
            delta_fallback: self.delta_fallback.load(Ordering::Relaxed),
            delta_rows: self.delta_rows.load(Ordering::Relaxed),
        }
    }
}

/// Evaluates `T_F` for whole subset families with shared intermediates and
/// work-stealing parallelism. See the module docs for the design.
#[derive(Debug)]
pub struct FamilyEvaluator<'e> {
    ev: &'e Evaluator<'e>,
    cache: Arc<FamilyCache>,
    /// Per-atom column permutations under which the atom's stored
    /// relation is invariant (always at least the identity).
    syms: Vec<Vec<Vec<u8>>>,
}

impl<'e> FamilyEvaluator<'e> {
    /// Wraps an evaluator with fresh (empty) caches. Detects each stored
    /// relation's column symmetries once (exact row-set checks) so the
    /// isomorphism keys can exploit e.g. symmetric edge relations.
    pub fn new(ev: &'e Evaluator<'e>) -> Self {
        FamilyEvaluator::with_cache(ev, Arc::new(FamilyCache::new()))
    }

    /// Wraps an evaluator around an existing [`FamilyCache`], so several
    /// evaluations over the **same query and identical read-set
    /// relations** — e.g. repeated releases or a β sweep — share one memo
    /// store and value cache. Factors cached by a previous evaluator
    /// carry their own code domain, and the kernel reconciles foreign
    /// domains at join time, so reuse across evaluator instances (even
    /// across mutations of relations the query does not mention) is
    /// transparent; see [`FamilyCache`] for the reconcile path.
    ///
    /// Reusing a cache after a **read-set** relation changed is unsound
    /// (stale factors and `T` values would be served); owners either drop
    /// the cache when such a mutation happens or revalidate its recorded
    /// stamp with [`FamilyCache::is_valid_for`].
    pub fn with_cache(ev: &'e Evaluator<'e>, cache: Arc<FamilyCache>) -> Self {
        cache.maybe_seed(ev);
        FamilyEvaluator {
            syms: column_symmetries(ev.query(), ev.database()),
            ev,
            cache,
        }
    }

    /// The wrapped evaluator.
    pub fn evaluator(&self) -> &Evaluator<'e> {
        self.ev
    }

    /// The cache this evaluator reads and fills.
    pub fn cache(&self) -> &Arc<FamilyCache> {
        &self.cache
    }

    /// `T_E(I)` for one subset, sharing intermediates with every previous
    /// call on this `FamilyEvaluator`.
    pub fn t_e(&self, subset: &[usize]) -> Result<u128, EvalError> {
        let key = canonical_subset_key(self.ev.query(), subset, &self.syms);
        self.t_e_keyed(key, subset)
    }

    /// [`FamilyEvaluator::t_e`] with the canonical key already computed
    /// (`t_family` derives keys while grouping classes; recomputing the
    /// ordering minimization per representative would double that work).
    fn t_e_keyed(&self, key: Vec<u64>, subset: &[usize]) -> Result<u128, EvalError> {
        if let Some(&v) = self
            .cache
            .values
            .lock()
            .expect("value cache lock poisoned")
            .get(&key)
        {
            self.cache.value_hits.fetch_add(1, Ordering::Relaxed);
            dpcq_obs::cache_access(dpcq_obs::CacheKind::Value, true);
            return Ok(v);
        }
        dpcq_obs::cache_access(dpcq_obs::CacheKind::Value, false);
        let v = self.ev.t_e_memo(Some(&self.cache.store), subset)?;
        self.cache
            .values
            .lock()
            .expect("value cache lock poisoned")
            .insert(key, v);
        Ok(v)
    }

    /// `T_F(I)` for every subset in `family`, returned in the family's
    /// (sorted) iteration order.
    ///
    /// Isomorphic subsets are grouped and evaluated once; classes are
    /// processed largest-estimated-cost first by `threads` work-stealing
    /// workers (`threads ≤ 1`, or a single class, runs serially). The
    /// empty family yields an empty result.
    pub fn t_family(
        &self,
        family: &BTreeSet<Vec<usize>>,
        threads: usize,
    ) -> Result<Vec<(Vec<usize>, u128)>, EvalError> {
        self.t_family_with_cancel(family, threads, CancelToken::never())
    }

    /// [`FamilyEvaluator::t_family`] under a cooperative [`CancelToken`]:
    /// the token is checked before each isomorphism class is picked up
    /// (serially and by every work-stealing worker), and a trip surfaces
    /// as [`EvalError::Cancelled`]. Everything memoized before the trip
    /// stays in the shared cache, so a retry resumes rather than
    /// restarts.
    pub fn t_family_with_cancel(
        &self,
        family: &BTreeSet<Vec<usize>>,
        threads: usize,
        cancel: CancelToken,
    ) -> Result<Vec<(Vec<usize>, u128)>, EvalError> {
        let subsets: Vec<&Vec<usize>> = family.iter().collect();
        if subsets.is_empty() {
            return Ok(Vec::new());
        }

        // Group isomorphic residuals; each class evaluates once, reusing
        // the key computed here for its value-cache entry.
        let mut class_of_key: FxHashMap<Vec<u64>, usize> = FxHashMap::default();
        let mut classes: Vec<Vec<usize>> = Vec::new();
        let mut class_keys: Vec<Vec<u64>> = Vec::new();
        for (i, s) in subsets.iter().enumerate() {
            let key = canonical_subset_key(self.ev.query(), s, &self.syms);
            match class_of_key.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => classes[*e.get()].push(i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    class_keys.push(e.key().clone());
                    e.insert(classes.len());
                    classes.push(vec![i]);
                }
            }
        }

        // Largest estimated cost first, so work-stealing never strands a
        // worker behind one expensive class picked up last.
        let mut order: Vec<usize> = (0..classes.len()).collect();
        order.sort_by_key(|&ci| {
            let rep = subsets[classes[ci][0]];
            std::cmp::Reverse((self.estimated_cost(rep), ci))
        });

        let threads = threads.clamp(1, classes.len());
        let results: Mutex<Vec<Option<Result<u128, EvalError>>>> =
            Mutex::new(vec![None; classes.len()]);
        if threads <= 1 {
            for &ci in &order {
                cancel.check().inspect_err(|_| {
                    dpcq_obs::inc_event(dpcq_obs::Event::CancelTrip);
                })?;
                let v = self.t_e_keyed(class_keys[ci].clone(), subsets[classes[ci][0]]);
                results.lock().expect("result lock poisoned")[ci] = Some(v);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        // Deadline checkpoint: a tripped token stops every
                        // worker before its next class pickup; classes
                        // already in flight run to completion (and stay
                        // cached).
                        if cancel.is_cancelled() {
                            break;
                        }
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= order.len() {
                            break;
                        }
                        dpcq_obs::inc_event(dpcq_obs::Event::WorkSteal);
                        let ci = order[k];
                        let v = self.t_e_keyed(class_keys[ci].clone(), subsets[classes[ci][0]]);
                        results.lock().expect("result lock poisoned")[ci] = Some(v);
                    });
                }
            });
        }

        let results = results.into_inner().expect("result lock poisoned");
        let mut value_of: Vec<Option<u128>> = vec![None; subsets.len()];
        for (ci, members) in classes.iter().enumerate() {
            // A `None` slot means a worker observed the cancellation after
            // this class was handed out but before anyone evaluated it.
            let v = results[ci]
                .clone()
                .ok_or(EvalError::Cancelled)
                .inspect_err(|_| dpcq_obs::inc_event(dpcq_obs::Event::CancelTrip))??;
            for &m in members {
                value_of[m] = Some(v);
            }
        }
        Ok(subsets
            .into_iter()
            .zip(value_of)
            .map(|(s, v)| (s.clone(), v.expect("every subset belongs to a class")))
            .collect())
    }

    /// Cache-effectiveness counters (of the underlying [`FamilyCache`],
    /// accumulated across every evaluator sharing it).
    pub fn stats(&self) -> FamilyStats {
        self.cache.stats()
    }

    /// Crude per-subset cost estimate used only for scheduling:
    /// residual width · total base rows.
    fn estimated_cost(&self, subset: &[usize]) -> u128 {
        let width = self.ev.query().subset_vars(subset).len() as u128;
        let rows: u128 = subset
            .iter()
            .map(|&i| self.ev.atom_factor(i).len() as u128)
            .sum();
        width.max(1).saturating_mul(rows.max(1))
    }
}

// --- canonical residual serialization -----------------------------------

const TAG_ATOM: u64 = u64::MAX;
const TAG_VAR: u64 = 0;
const TAG_CONST: u64 = 1;

/// All permutations of `items`.
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (k, &first) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(k);
        for mut tail in permutations(&rest) {
            tail.insert(0, first);
            out.push(tail);
        }
    }
    out
}

/// Per-atom column permutations under which the atom's stored relation is
/// invariant as a row set (always at least the identity; the search is
/// limited to arity ≤ [`MAX_SYM_ARITY`]). Rewriting an atom's term list
/// through such a permutation does not change the constraint the atom
/// expresses, so the canonicalization may minimize over these rewrites —
/// on a symmetric edge relation this identifies `Edge(x,y)` with
/// `Edge(y,x)`.
fn column_symmetries(q: &ConjunctiveQuery, db: &dpcq_relation::Database) -> Vec<Vec<Vec<u8>>> {
    let mut by_relation: FxHashMap<&str, Vec<Vec<u8>>> = FxHashMap::default();
    q.atoms()
        .iter()
        .map(|atom| {
            by_relation
                .entry(atom.relation.as_str())
                .or_insert_with(|| {
                    let arity = atom.arity();
                    let identity: Vec<u8> = (0..arity as u8).collect();
                    let Some(rel) = db.relation(&atom.relation) else {
                        return vec![identity];
                    };
                    if arity > MAX_SYM_ARITY || rel.arity() != arity {
                        return vec![identity];
                    }
                    let cols: Vec<usize> = (0..arity).collect();
                    let mut perms = Vec::new();
                    let mut buf = vec![dpcq_relation::Value::default(); arity];
                    for p in permutations(&cols) {
                        let invariant = rel.iter().all(|row| {
                            for (slot, &c) in buf.iter_mut().zip(&p) {
                                *slot = row[c];
                            }
                            rel.contains(&buf)
                        });
                        if invariant {
                            perms.push(p.iter().map(|&c| c as u8).collect());
                        }
                    }
                    perms
                })
                .clone()
        })
        .collect()
}

/// A canonical token stream describing the residual query on `subset` —
/// its atoms, boundary, projected output, and contained predicates — up to
/// a renaming of variables and column-symmetric atom rewrites. Equal keys
/// imply isomorphic residuals, hence equal `T` values on the same
/// database (the converse need not hold; a missed isomorphism only costs
/// a duplicate evaluation).
///
/// The stream is self-delimiting (every variable-length section is length-
/// prefixed), and the variable renaming is minimized over all orderings of
/// atoms within same-relation groups (capped at [`MAX_CANON_ORDERINGS`]
/// orderings, beyond which the identity ordering is used) combined with
/// the atoms' relation column symmetries in `syms` (the combination is
/// capped at [`MAX_CANON_SERIALIZATIONS`], beyond which only orderings
/// are searched).
pub(crate) fn canonical_subset_key(
    q: &ConjunctiveQuery,
    subset: &[usize],
    syms: &[Vec<Vec<u8>>],
) -> Vec<u64> {
    // Stable relation ids: the first atom index carrying the name.
    let rel_id = |i: usize| -> u64 {
        let name = &q.atoms()[i].relation;
        q.atoms()
            .iter()
            .position(|a| &a.relation == name)
            .expect("atom's own relation occurs in the query") as u64
    };

    // Same-relation groups, ordered by relation id.
    let mut sorted: Vec<usize> = subset.to_vec();
    sorted.sort_unstable();
    let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
    for &i in &sorted {
        let r = rel_id(i);
        match groups.iter_mut().find(|(g, _)| *g == r) {
            Some((_, v)) => v.push(i),
            None => groups.push((r, vec![i])),
        }
    }
    groups.sort_by_key(|(r, _)| *r);

    let boundary = q.boundary(subset);
    let output = q.residual_output(subset);
    let preds = q.contained_predicates(subset);

    // `flips[k]` selects the column permutation applied to the k-th atom
    // of the ordering (an index into that atom's symmetry list).
    let serialize = |ordering: &[usize], flips: &[usize]| -> Vec<u64> {
        let mut canon: Vec<Option<u32>> = vec![None; q.num_vars()];
        let mut next = 0u32;
        let mut out: Vec<u64> = Vec::with_capacity(8 + 4 * ordering.len());
        out.push(ordering.len() as u64);
        for (k, &i) in ordering.iter().enumerate() {
            let atom = &q.atoms()[i];
            let perm: &[u8] = &syms[i][flips.get(k).copied().unwrap_or(0)];
            out.push(TAG_ATOM);
            out.push(rel_id(i));
            out.push(atom.terms.len() as u64);
            for &c in perm {
                match &atom.terms[c as usize] {
                    Term::Var(v) => {
                        let id = *canon[v.0].get_or_insert_with(|| {
                            let id = next;
                            next += 1;
                            id
                        });
                        out.push(TAG_VAR);
                        out.push(id as u64);
                    }
                    Term::Const(c) => {
                        out.push(TAG_CONST);
                        out.push(c.0 as u64);
                    }
                }
            }
        }
        let canon_id = |v: &VarId| -> u64 {
            canon[v.0].expect("boundary/output/predicate var occurs in the subset") as u64
        };
        let mut b: Vec<u64> = boundary.iter().map(canon_id).collect();
        b.sort_unstable();
        out.push(b.len() as u64);
        out.extend(b);
        match &output {
            None => out.push(u64::MAX),
            Some(o) => {
                let mut ids: Vec<u64> = o.iter().map(canon_id).collect();
                ids.sort_unstable();
                ids.dedup();
                out.push(ids.len() as u64);
                out.extend(ids);
            }
        }
        let term_tok = |t: &Term| -> [u64; 2] {
            match t {
                Term::Var(v) => [TAG_VAR, canon_id(v)],
                Term::Const(c) => [TAG_CONST, c.0 as u64],
            }
        };
        let mut ps: Vec<[u64; 5]> = preds
            .iter()
            .map(|p| {
                let l = term_tok(&p.lhs);
                let r = term_tok(&p.rhs);
                // Orientation-normalize: `a op b` ≡ `b op.flip() a`.
                let fwd = [p.op as u64, l[0], l[1], r[0], r[1]];
                let rev = [p.op.flip() as u64, r[0], r[1], l[0], l[1]];
                fwd.min(rev)
            })
            .collect();
        ps.sort_unstable();
        out.push(ps.len() as u64);
        for p in ps {
            out.extend(p);
        }
        out
    };

    let orderings_count: usize = groups
        .iter()
        .map(|(_, g)| (1..=g.len()).product::<usize>())
        .try_fold(1usize, |a, b: usize| a.checked_mul(b))
        .unwrap_or(usize::MAX);
    if orderings_count > MAX_CANON_ORDERINGS {
        return serialize(&sorted, &[]);
    }
    let flip_count: usize = sorted
        .iter()
        .map(|&i| syms[i].len())
        .try_fold(1usize, |a, b| a.checked_mul(b))
        .unwrap_or(usize::MAX);
    let search_flips = orderings_count
        .checked_mul(flip_count)
        .is_some_and(|n| n <= MAX_CANON_SERIALIZATIONS);
    if orderings_count <= 1 && !search_flips {
        return serialize(&sorted, &[]);
    }

    let mut best: Option<Vec<u64>> = None;
    for ordering in group_orderings(&groups) {
        // Odometer over the per-atom column-permutation choices (a single
        // all-identity pass when the flip search is capped out).
        let radixes: Vec<usize> = if search_flips {
            ordering.iter().map(|&i| syms[i].len()).collect()
        } else {
            vec![1; ordering.len()]
        };
        let mut flips = vec![0usize; ordering.len()];
        loop {
            let key = serialize(&ordering, &flips);
            if best.as_ref().is_none_or(|b| key < *b) {
                best = Some(key);
            }
            let mut pos = 0;
            loop {
                if pos == flips.len() {
                    break;
                }
                flips[pos] += 1;
                if flips[pos] < radixes[pos] {
                    break;
                }
                flips[pos] = 0;
                pos += 1;
            }
            if pos == flips.len() {
                break;
            }
        }
    }
    best.expect("at least one ordering exists")
}

/// All concatenations of per-group permutations, groups kept in order.
fn group_orderings(groups: &[(u64, Vec<usize>)]) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for (_, g) in groups {
        let g_perms = permutations(g);
        let mut grown = Vec::with_capacity(out.len() * g_perms.len());
        for prefix in &out {
            for p in &g_perms {
                let mut o = prefix.clone();
                o.extend_from_slice(p);
                grown.push(o);
            }
        }
        out = grown;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcq_query::parse_query;
    use dpcq_relation::{Database, Value};

    fn k4_db() -> Database {
        let mut db = Database::new();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    db.insert_tuple("Edge", &[Value(i), Value(j)]);
                }
            }
        }
        db
    }

    /// Identity-only column symmetries (what an asymmetric db yields).
    fn id_syms(q: &dpcq_query::ConjunctiveQuery) -> Vec<Vec<Vec<u8>>> {
        q.atoms()
            .iter()
            .map(|a| vec![(0..a.arity() as u8).collect()])
            .collect()
    }

    #[test]
    fn canonical_key_collapses_isomorphic_singletons() {
        let q = parse_query("Q(*) :- Edge(a,b), Edge(b,c), Edge(a,c)").unwrap();
        let s = id_syms(&q);
        let k0 = canonical_subset_key(&q, &[0], &s);
        let k1 = canonical_subset_key(&q, &[1], &s);
        let k2 = canonical_subset_key(&q, &[2], &s);
        // Every single-atom residual has boundary = both vars: one class.
        assert_eq!(k0, k1);
        assert_eq!(k1, k2);
    }

    #[test]
    fn canonical_key_distinguishes_orientation() {
        // Path a→b→c with keep {a,c} vs out-star: different directed
        // shapes, different keys — unless the relation is symmetric.
        let q = parse_query("Q(*) :- Edge(a,b), Edge(b,c), Edge(a,c)").unwrap();
        let s = id_syms(&q);
        let path = canonical_subset_key(&q, &[0, 1], &s); // Edge(a,b),Edge(b,c)
        let star = canonical_subset_key(&q, &[0, 2], &s); // Edge(a,b),Edge(a,c)
        assert_ne!(path, star);
    }

    #[test]
    fn symmetric_relation_collapses_orientation_classes() {
        // On a symmetric edge relation the path / out-star / in-star pair
        // residuals of the triangle are all "two edges sharing a vertex,
        // keep the far endpoints": one class.
        let q = parse_query("Q(*) :- Edge(a,b), Edge(b,c), Edge(a,c)").unwrap();
        let db = k4_db(); // symmetric by construction
        let syms = column_symmetries(&q, &db);
        assert!(syms.iter().all(|s| s.len() == 2), "swap detected");
        let k01 = canonical_subset_key(&q, &[0, 1], &syms);
        let k02 = canonical_subset_key(&q, &[0, 2], &syms);
        let k12 = canonical_subset_key(&q, &[1, 2], &syms);
        assert_eq!(k01, k02);
        assert_eq!(k02, k12);
        // An asymmetric instance must not collapse them.
        let mut directed = Database::new();
        directed.insert_tuple("Edge", &[Value(1), Value(2)]);
        let dsyms = column_symmetries(&q, &directed);
        assert!(dsyms.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn canonical_key_collapses_four_clique_pairs() {
        // 4-clique query: Edge(xi,xj) for i<j. The "out-out" pairs
        // {(x1,x2),(x1,x3)} and {(x2,x3),(x2,x4)} are isomorphic even
        // without column symmetries.
        let q = parse_query(
            "Q(*) :- Edge(x1,x2), Edge(x1,x3), Edge(x1,x4), Edge(x2,x3), Edge(x2,x4), Edge(x3,x4)",
        )
        .unwrap();
        let s = id_syms(&q);
        let a = canonical_subset_key(&q, &[0, 1], &s); // (x1,x2),(x1,x3)
        let b = canonical_subset_key(&q, &[3, 4], &s); // (x2,x3),(x2,x4)
        assert_eq!(a, b);
    }

    #[test]
    fn family_matches_per_subset_evaluator() {
        let q = parse_query("Q(*) :- Edge(a,b), Edge(b,c), Edge(a,c)").unwrap();
        let db = k4_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        let fam: BTreeSet<Vec<usize>> = [
            vec![],
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
        ]
        .into_iter()
        .collect();
        let fe = FamilyEvaluator::new(&ev);
        for threads in [1, 4] {
            let got = fe.t_family(&fam, threads).unwrap();
            assert_eq!(got.len(), fam.len());
            for (s, v) in &got {
                assert_eq!(*v, ev.t_e(s).unwrap(), "subset {s:?}");
            }
        }
        let stats = fe.stats();
        // 7 subsets collapse to ≤ 5 classes (∅, singletons, 3 pair shapes)
        // and the second t_family call is answered from the value cache.
        assert!(stats.values_computed <= 5, "stats {stats:?}");
        assert!(stats.value_hits >= stats.values_computed, "stats {stats:?}");
    }

    #[test]
    fn cache_shared_across_evaluator_instances() {
        // The engine-owned-store scenario: a second release builds a fresh
        // Evaluator over the *identical* database and answers the whole
        // family from the shared cache without recomputing anything.
        let q = parse_query("Q(*) :- Edge(a,b), Edge(b,c), Edge(a,c)").unwrap();
        let db = k4_db();
        let fam: BTreeSet<Vec<usize>> = [vec![], vec![0], vec![1], vec![2], vec![0, 1], vec![0, 2]]
            .into_iter()
            .collect();
        let cache = Arc::new(FamilyCache::new());
        let first = {
            let ev = Evaluator::new(&q, &db).unwrap();
            let fe = FamilyEvaluator::with_cache(&ev, Arc::clone(&cache));
            fe.t_family(&fam, 1).unwrap()
        };
        let after_first = cache.stats();
        assert!(after_first.factor_misses > 0);
        assert!(after_first.values_computed > 0);
        let second = {
            let ev = Evaluator::new(&q, &db).unwrap();
            let fe = FamilyEvaluator::with_cache(&ev, Arc::clone(&cache));
            fe.t_family(&fam, 1).unwrap()
        };
        assert_eq!(first, second);
        let after_second = cache.stats();
        // No new residual values, no new factors: pure cache replay.
        assert_eq!(after_second.values_computed, after_first.values_computed);
        assert_eq!(after_second.factor_misses, after_first.factor_misses);
        assert!(after_second.value_hits > after_first.value_hits);
    }

    #[test]
    fn apply_delta_matches_rebuild_for_insert_and_remove() {
        let q = parse_query("Q(*) :- Edge(a,b), Edge(b,c), Edge(a,c)").unwrap();
        let mut db = k4_db();
        let fam: BTreeSet<Vec<usize>> = [
            vec![],
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![0, 1, 2],
        ]
        .into_iter()
        .collect();
        let cache = Arc::new(FamilyCache::new());
        {
            let ev = Evaluator::new(&q, &db).unwrap();
            let fe = FamilyEvaluator::with_cache(&ev, Arc::clone(&cache));
            fe.t_family(&fam, 1).unwrap();
        }
        // Insert a batch introducing a brand-new domain value (4), then
        // remove it again: both directions must agree with a rebuild.
        let batch = vec![vec![Value(4), Value(0)], vec![Value(0), Value(4)]];
        for (round, insert) in [(0, true), (1, false)] {
            for t in &batch {
                if insert {
                    db.insert_tuple("Edge", t);
                } else {
                    db.remove_tuple("Edge", t);
                }
            }
            let out = cache.apply_delta(&q, "Edge", &batch, insert, None);
            assert!(
                matches!(out, DeltaOutcome::Applied { .. }),
                "round {round}: {out:?}"
            );
            let seeds = cache.seed_factors().unwrap();
            let ev = Evaluator::with_seed_factors(&q, &db, seeds).unwrap();
            let fe = FamilyEvaluator::with_cache(&ev, Arc::clone(&cache));
            let fresh = Evaluator::new(&q, &db).unwrap();
            for s in &fam {
                assert_eq!(
                    fe.t_e(s).unwrap(),
                    fresh.t_e(s).unwrap(),
                    "round {round}, subset {s:?}"
                );
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.delta_applied, 2, "stats {stats:?}");
        assert!(stats.delta_rows > 0, "stats {stats:?}");
    }

    #[test]
    fn stamped_cache_revalidates_only_against_its_own_stamp() {
        let stamp = |pairs: &[(&str, u64)]| {
            VersionStamp::new(pairs.iter().map(|&(n, v)| (n.to_string(), v)))
        };
        let built_at = stamp(&[("Edge", 3)]);
        let cache = FamilyCache::for_stamp(built_at.clone());
        assert_eq!(cache.stamp(), Some(built_at.clone()));
        assert!(cache.is_valid_for(&built_at));
        // Any movement of a read-set relation retires the cache…
        assert!(!cache.is_valid_for(&stamp(&[("Edge", 4)])));
        // …and so does a different read set, even at equal versions.
        assert!(!cache.is_valid_for(&stamp(&[("Edge", 3), ("S", 0)])));
        // Unstamped caches opt out of mechanical revalidation.
        let manual = FamilyCache::new();
        assert_eq!(manual.stamp(), None);
        assert!(!manual.is_valid_for(&built_at));
    }

    #[test]
    fn tripped_token_cancels_before_any_class_is_evaluated() {
        let q = parse_query("Q(*) :- Edge(a,b), Edge(b,c), Edge(a,c)").unwrap();
        let db = k4_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        let fam: BTreeSet<Vec<usize>> = [vec![], vec![0], vec![0, 1]].into_iter().collect();
        let fe = FamilyEvaluator::new(&ev);
        let expired = CancelToken::with_deadline(std::time::Instant::now());
        for threads in [1, 4] {
            assert_eq!(
                fe.t_family_with_cancel(&fam, threads, expired),
                Err(EvalError::Cancelled),
                "threads = {threads}"
            );
        }
        assert_eq!(fe.stats().values_computed, 0, "no class was picked up");
        // A live token behaves exactly like plain `t_family`, and the
        // cancelled attempts left the cache usable.
        let got = fe
            .t_family_with_cancel(&fam, 2, CancelToken::never())
            .unwrap();
        assert_eq!(got, fe.t_family(&fam, 1).unwrap());
    }

    #[test]
    fn empty_family_is_empty() {
        let q = parse_query("Q(*) :- Edge(a,b)").unwrap();
        let db = k4_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        let fe = FamilyEvaluator::new(&ev);
        assert!(fe.t_family(&BTreeSet::new(), 8).unwrap().is_empty());
    }

    #[test]
    fn factor_store_shares_across_subsets() {
        let q = parse_query(
            "Q(*) :- Edge(x1,x2), Edge(x1,x3), Edge(x1,x4), Edge(x2,x3), Edge(x2,x4), Edge(x3,x4)",
        )
        .unwrap();
        let db = k4_db();
        let ev = Evaluator::new(&q, &db).unwrap();
        // Two overlapping 4-atom subsets eliminate the same bucket
        // (atoms {0,1,2} summing out x1): the second evaluation must hit.
        // Drive the store directly — through `FamilyEvaluator::t_e` these
        // two subsets are isomorphic and the value cache would answer
        // before the factor store is ever consulted.
        let store = FactorStore::new();
        let a = ev.t_e_memo(Some(&store), &[0, 1, 2, 3]).unwrap();
        let b = ev.t_e_memo(Some(&store), &[0, 1, 2, 4]).unwrap();
        assert_eq!(a, ev.t_e(&[0, 1, 2, 3]).unwrap());
        assert_eq!(b, ev.t_e(&[0, 1, 2, 4]).unwrap());
        let (hits, misses) = store.counters();
        assert!(hits > 0, "hits {hits}, misses {misses}");
    }

    #[test]
    fn projected_queries_key_on_output() {
        let q_full = parse_query("Q(*) :- Edge(a,b), Edge(b,c)").unwrap();
        let q_proj = parse_query("Q(a) :- Edge(a,b), Edge(b,c)").unwrap();
        let kf = canonical_subset_key(&q_full, &[0], &id_syms(&q_full));
        let kp = canonical_subset_key(&q_proj, &[0], &id_syms(&q_proj));
        assert_ne!(kf, kp);
    }
}
