//! A naive nested-loop reference evaluator.
//!
//! Exponentially slower than [`crate::Evaluator`] but obviously correct;
//! used by tests (including cross-crate property tests) to validate the
//! bucket-elimination engine on small instances.

use crate::error::EvalError;
use dpcq_query::{ConjunctiveQuery, Term, VarId};
use dpcq_relation::{Database, FxHashMap, FxHashSet, Value};

/// All satisfying valuations of the residual query on `subset`, with the
/// predicates *contained* in `var(q_subset)` applied (Corollary 5.1
/// semantics, matching [`crate::Evaluator`]). Each valuation is a vector
/// indexed by `VarId` with `Some` exactly on `var(q_subset)`.
pub fn satisfying_valuations(
    query: &ConjunctiveQuery,
    db: &Database,
    subset: &[usize],
) -> Result<Vec<Vec<Option<Value>>>, EvalError> {
    for &i in subset {
        let atom = &query.atoms()[i];
        let rel = db
            .relation(&atom.relation)
            .ok_or_else(|| EvalError::UnknownRelation {
                relation: atom.relation.clone(),
            })?;
        if rel.arity() != atom.arity() {
            return Err(EvalError::ArityMismatch {
                relation: atom.relation.clone(),
                atom_arity: atom.arity(),
                relation_arity: rel.arity(),
            });
        }
    }
    let preds = query.contained_predicates(subset);
    let mut out = Vec::new();
    let mut assignment: Vec<Option<Value>> = vec![None; query.num_vars()];
    recurse(query, db, subset, 0, &mut assignment, &mut out);
    out.retain(|a| {
        preds
            .iter()
            .all(|p| p.eval(|v| a[v.0].expect("contained predicate var is bound")))
    });
    Ok(out)
}

fn recurse(
    query: &ConjunctiveQuery,
    db: &Database,
    subset: &[usize],
    depth: usize,
    assignment: &mut Vec<Option<Value>>,
    out: &mut Vec<Vec<Option<Value>>>,
) {
    if depth == subset.len() {
        out.push(assignment.clone());
        return;
    }
    let atom = &query.atoms()[subset[depth]];
    let rel = db.relation(&atom.relation).expect("validated");
    'rows: for row in rel.iter() {
        let mut newly_bound: Vec<VarId> = Vec::new();
        let mut ok = true;
        for (term, &val) in atom.terms.iter().zip(row) {
            match term {
                Term::Const(c) => {
                    if *c != val {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment[v.0] {
                    None => {
                        assignment[v.0] = Some(val);
                        newly_bound.push(*v);
                    }
                    Some(prev) => {
                        if prev != val {
                            ok = false;
                            break;
                        }
                    }
                },
            }
        }
        if ok {
            recurse(query, db, subset, depth + 1, assignment, out);
        }
        for v in newly_bound {
            assignment[v.0] = None;
        }
        continue 'rows;
    }
}

/// `|q(I)|` by brute force (projection- and predicate-aware).
pub fn count(query: &ConjunctiveQuery, db: &Database) -> Result<u128, EvalError> {
    let all: Vec<usize> = (0..query.num_atoms()).collect();
    let vals = satisfying_valuations(query, db, &all)?;
    match query.projection() {
        None => Ok(vals.len() as u128),
        Some(o) => {
            let mut distinct: FxHashSet<Vec<Value>> = FxHashSet::default();
            for a in &vals {
                distinct.insert(
                    o.iter()
                        .map(|v| a[v.0].expect("output var bound"))
                        .collect(),
                );
            }
            Ok(distinct.len() as u128)
        }
    }
}

/// `T_E(I)` by brute force, matching [`crate::Evaluator::t_e`] semantics
/// (including the Section 6 projected form and the `T_∅ = 1` convention).
pub fn t_e(query: &ConjunctiveQuery, db: &Database, subset: &[usize]) -> Result<u128, EvalError> {
    if subset.is_empty() {
        return Ok(1);
    }
    let boundary = query.boundary(subset);
    let vals = satisfying_valuations(query, db, subset)?;
    let key = |a: &Vec<Option<Value>>| -> Vec<Value> {
        boundary
            .iter()
            .map(|v| a[v.0].expect("boundary var bound"))
            .collect()
    };
    match query.residual_output(subset) {
        None => {
            let mut groups: FxHashMap<Vec<Value>, u128> = FxHashMap::default();
            for a in &vals {
                *groups.entry(key(a)).or_insert(0) += 1;
            }
            Ok(groups.values().copied().max().unwrap_or(0))
        }
        Some(o) => {
            if o.is_empty() {
                return Ok(u128::from(!vals.is_empty()));
            }
            let mut groups: FxHashMap<Vec<Value>, FxHashSet<Vec<Value>>> = FxHashMap::default();
            for a in &vals {
                let proj: Vec<Value> = o.iter().map(|v| a[v.0].expect("output bound")).collect();
                groups.entry(key(a)).or_default().insert(proj);
            }
            Ok(groups.values().map(|s| s.len() as u128).max().unwrap_or(0))
        }
    }
}

/// Value-level reference implementations of the factor-kernel operations
/// (`join`, `join_eliminate`, `eliminate`, `merge_columns`), in the same
/// "obviously correct, exponentially slower" spirit as the rest of this
/// module. The differential property suite pits the columnar,
/// code-compressed kernel of [`crate::factor`] against these on random
/// duplicate-heavy inputs in both semirings.
pub mod factor_ref {
    use crate::factor::Semiring;
    use dpcq_query::VarId;
    use dpcq_relation::Value;
    use std::collections::BTreeMap;

    /// An annotated relation in its simplest form: sorted distinct rows
    /// mapped to their semiring annotation.
    pub type RefRows = BTreeMap<Vec<Value>, u128>;

    /// Normalizes raw `(row, weight)` pairs: zero weights drop, duplicate
    /// rows combine with the semiring's `+` (Boolean clamps).
    pub fn normalize<I>(rows: I, semiring: Semiring) -> RefRows
    where
        I: IntoIterator<Item = (Vec<Value>, u128)>,
    {
        let mut out = RefRows::new();
        for (row, w) in rows {
            if w == 0 {
                continue;
            }
            let w = semiring.lift(w);
            match out.entry(row) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(w);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let cur = *e.get();
                    *e.get_mut() = semiring.add(cur, w);
                }
            }
        }
        out
    }

    /// Output variable list of a natural join: `a`'s columns then `b`'s
    /// non-shared columns, minus `drop` (matching [`crate::Factor::join`]).
    pub fn join_vars(a: &[VarId], b: &[VarId], drop: &[VarId]) -> Vec<VarId> {
        a.iter()
            .copied()
            .chain(b.iter().copied().filter(|v| !a.contains(v)))
            .filter(|v| !drop.contains(v))
            .collect()
    }

    /// Nested-loop natural join with fused elimination of `drop`.
    pub fn join_eliminate(
        a_vars: &[VarId],
        a: &RefRows,
        b_vars: &[VarId],
        b: &RefRows,
        drop: &[VarId],
        semiring: Semiring,
    ) -> RefRows {
        let out_vars = join_vars(a_vars, b_vars, drop);
        let mut raw: Vec<(Vec<Value>, u128)> = Vec::new();
        for (ra, &wa) in a {
            'rows: for (rb, &wb) in b {
                for (i, v) in b_vars.iter().enumerate() {
                    if let Some(j) = a_vars.iter().position(|w| w == v) {
                        if ra[j] != rb[i] {
                            continue 'rows;
                        }
                    }
                }
                let out: Vec<Value> = out_vars
                    .iter()
                    .map(|v| {
                        if let Some(j) = a_vars.iter().position(|w| w == v) {
                            ra[j]
                        } else {
                            let j = b_vars.iter().position(|w| w == v).expect("var in b");
                            rb[j]
                        }
                    })
                    .collect();
                raw.push((out, semiring.mul(wa, wb)));
            }
        }
        normalize(raw, semiring)
    }

    /// Semiring projection: drops the given columns, combining collapsing
    /// rows with the semiring's `+`.
    pub fn eliminate(
        vars: &[VarId],
        rows: &RefRows,
        drop: &[VarId],
        semiring: Semiring,
    ) -> RefRows {
        let keep: Vec<usize> = (0..vars.len())
            .filter(|&i| !drop.contains(&vars[i]))
            .collect();
        normalize(
            rows.iter()
                .map(|(r, &w)| (keep.iter().map(|&i| r[i]).collect(), w)),
            semiring,
        )
    }

    /// Output variable list of [`merge_columns`].
    pub fn merge_vars(vars: &[VarId], rep: &[usize]) -> Vec<VarId> {
        let mut out: Vec<VarId> = Vec::new();
        for v in vars {
            let r = VarId(rep[v.0]);
            if !out.contains(&r) {
                out.push(r);
            }
        }
        out
    }

    /// Column substitution per a union-find representative table: columns
    /// of one class must agree (else the row drops) and collapse into one.
    pub fn merge_columns(
        vars: &[VarId],
        rows: &RefRows,
        rep: &[usize],
        semiring: Semiring,
    ) -> RefRows {
        let out_vars = merge_vars(vars, rep);
        let mut raw: Vec<(Vec<Value>, u128)> = Vec::new();
        'rows: for (r, &w) in rows {
            let mut merged: Vec<Option<Value>> = vec![None; out_vars.len()];
            for (i, v) in vars.iter().enumerate() {
                let p = out_vars
                    .iter()
                    .position(|w| *w == VarId(rep[v.0]))
                    .expect("representative present");
                match merged[p] {
                    None => merged[p] = Some(r[i]),
                    Some(prev) if prev != r[i] => continue 'rows,
                    Some(_) => {}
                }
            }
            raw.push((merged.into_iter().map(|m| m.expect("filled")).collect(), w));
        }
        normalize(raw, semiring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;
    use dpcq_query::parse_query;
    use dpcq_relation::vals;

    fn db() -> Database {
        let mut db = Database::new();
        for e in [[1, 2], [2, 3], [3, 4], [1, 3], [3, 1]] {
            db.insert_tuple("Edge", &[Value(e[0]), Value(e[1])]);
        }
        db
    }

    #[test]
    fn count_matches_engine() {
        for text in [
            "Q(*) :- Edge(x, y)",
            "Q(*) :- Edge(x, y), Edge(y, z)",
            "Q(*) :- Edge(x, y), Edge(y, z), x != z",
            "Q(*) :- Edge(x, y), Edge(y, x)",
            "Q(x) :- Edge(x, y), Edge(y, z)",
            "Q(x, z) :- Edge(x, y), Edge(y, z)",
            "Q(*) :- Edge(x1,x2), Edge(x2,x3), Edge(x1,x3)",
            "Q(*) :- Edge(x, y), x < y",
            "Q(*) :- Edge(1, y)",
        ] {
            let q = parse_query(text).unwrap();
            let d = db();
            let ev = Evaluator::new(&q, &d).unwrap();
            assert_eq!(ev.count().unwrap(), count(&q, &d).unwrap(), "{text}");
        }
    }

    #[test]
    fn te_matches_engine_on_all_subsets() {
        for text in [
            "Q(*) :- Edge(x, y), Edge(y, z)",
            "Q(*) :- Edge(x, y), Edge(y, z), x != z, x != y",
            "Q(*) :- Edge(x1,x2), Edge(x2,x3), Edge(x1,x3), x1 != x3",
            "Q(x) :- Edge(x, y), Edge(y, z)",
            "Q(z) :- Edge(x, y), Edge(y, z)",
        ] {
            let q = parse_query(text).unwrap();
            let d = db();
            let ev = Evaluator::new(&q, &d).unwrap();
            let n = q.num_atoms();
            for subset in dpcq_query::analysis::subsets(&(0..n).collect::<Vec<_>>()) {
                assert_eq!(
                    ev.t_e(&subset).unwrap(),
                    t_e(&q, &d, &subset).unwrap(),
                    "{text} E={subset:?}"
                );
            }
        }
    }

    #[test]
    fn empty_subset_is_unit() {
        let q = parse_query("Q(*) :- Edge(x, y)").unwrap();
        let d = db();
        assert_eq!(t_e(&q, &d, &[]).unwrap(), 1);
    }

    #[test]
    fn unknown_relation_detected() {
        let q = parse_query("Q(*) :- Missing(x)").unwrap();
        let d = db();
        assert!(satisfying_valuations(&q, &d, &[0]).is_err());
    }

    #[test]
    fn repeated_variable_atoms() {
        let mut d = db();
        d.insert_tuple("Edge", &vals![7, 7]);
        let q = parse_query("Q(*) :- Edge(x, x), Edge(x, y)").unwrap();
        let ev = Evaluator::new(&q, &d).unwrap();
        assert_eq!(ev.count().unwrap(), count(&q, &d).unwrap());
        assert_eq!(ev.count().unwrap(), 1); // x=7, y=7 only
    }
}
