//! A satisfiability solver for conjunctions of order constraints over ℤ.
//!
//! Theorem 1.2 requires deciding satisfiability of `ϕ₁ ∧ … ∧ ϕ_S` where
//! each `ϕ` is a predicate with some variables replaced by constants. For
//! the paper's polynomial cases — inequalities (`≠`) and comparisons
//! (`<`, `≤`) — this is the classic *difference-constraint* problem:
//!
//! * `x < y` ⇔ `x − y ≤ −1`, `x ≤ y` ⇔ `x − y ≤ 0` (over ℤ);
//! * constants become offsets against a virtual zero node;
//! * the conjunction of `≤`-constraints is satisfiable iff the constraint
//!   graph has no negative cycle (Bellman–Ford / Floyd–Warshall);
//! * a disequality `a ≠ b` can only fail if the `≤`-system *forces*
//!   `a = b`, i.e. the tightest bounds give `a − b ≤ 0` and `b − a ≤ 0`;
//!   over the infinite domain ℤ, non-forced disequalities can always be
//!   satisfied simultaneously by a generic perturbation.
//!
//! This solver backs [`crate::generic::OrderOracle`] and is also usable on
//! its own.

use dpcq_query::CmpOp;

/// One side of a constraint: a variable (by arbitrary `usize` id) or an
/// integer constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A free variable.
    Var(usize),
    /// A fixed integer.
    Const(i64),
}

/// A conjunction of binary order constraints over ℤ.
#[derive(Clone, Debug, Default)]
pub struct OrderCsp {
    constraints: Vec<(Operand, CmpOp, Operand)>,
}

const INF: i64 = i64::MAX / 4;

impl OrderCsp {
    /// Creates an empty (trivially satisfiable) system.
    pub fn new() -> Self {
        OrderCsp::default()
    }

    /// Adds `lhs op rhs`.
    pub fn add(&mut self, lhs: Operand, op: CmpOp, rhs: Operand) {
        self.constraints.push((lhs, op, rhs));
    }

    /// Decides whether the system has an integer solution.
    pub fn satisfiable(&self) -> bool {
        // Dense node table: zero node (index 0) + variables.
        let mut var_ids: Vec<usize> = self
            .constraints
            .iter()
            .flat_map(|(a, _, b)| [a, b])
            .filter_map(|o| match o {
                Operand::Var(v) => Some(*v),
                Operand::Const(_) => None,
            })
            .collect();
        var_ids.sort_unstable();
        var_ids.dedup();
        let node_of = |o: &Operand| -> (usize, i64) {
            // (node index, offset): value(operand) = value(node) + offset.
            match o {
                Operand::Var(v) => (1 + var_ids.binary_search(v).expect("var listed"), 0),
                Operand::Const(c) => (0, *c),
            }
        };
        let n = 1 + var_ids.len();

        // dist[u][v] = tightest proven bound on value(v) − value(u).
        let mut dist = vec![vec![INF; n]; n];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0;
        }
        let mut neqs: Vec<((usize, i64), (usize, i64))> = Vec::new();
        let mut contradiction = false;
        for (lhs, op, rhs) in &self.constraints {
            let l = node_of(lhs);
            let r = node_of(rhs);
            // Normalize to constraints of the form value(v) − value(u) ≤ w.
            let mut add_le = |u: (usize, i64), v: (usize, i64), w: i64| {
                // (value(v.0) + v.1) − (value(u.0) + u.1) ≤ w
                //   ⇔ value(v.0) − value(u.0) ≤ w + u.1 − v.1
                let bound = w + u.1 - v.1;
                if u.0 == v.0 {
                    if bound < 0 {
                        contradiction = true;
                    }
                } else if bound < dist[u.0][v.0] {
                    dist[u.0][v.0] = bound;
                }
            };
            match op {
                CmpOp::Lt => add_le(r, l, -1), // lhs − rhs ≤ −1
                CmpOp::Le => add_le(r, l, 0),  // lhs − rhs ≤ 0
                CmpOp::Gt => add_le(l, r, -1), // rhs − lhs ≤ −1
                CmpOp::Ge => add_le(l, r, 0),  // rhs − lhs ≤ 0
                CmpOp::Eq => {
                    add_le(r, l, 0);
                    add_le(l, r, 0);
                }
                CmpOp::Neq => neqs.push((l, r)),
            }
        }
        if contradiction {
            return false;
        }

        // Floyd–Warshall (node counts here are tiny: the predicate
        // variables of one residual query).
        for k in 0..n {
            for i in 0..n {
                if dist[i][k] == INF {
                    continue;
                }
                for j in 0..n {
                    if dist[k][j] == INF {
                        continue;
                    }
                    let via = dist[i][k] + dist[k][j];
                    if via < dist[i][j] {
                        dist[i][j] = via;
                    }
                }
            }
        }
        // Negative cycle ⇔ some dist[i][i] < 0.
        if (0..n).any(|i| dist[i][i] < 0) {
            return false;
        }
        // A disequality fails only when equality is forced.
        for ((ln, lo), (rn, ro)) in neqs {
            if ln == rn {
                if lo == ro {
                    return false; // syntactically identical operands
                }
                continue;
            }
            // Forced: value(lhs) == value(rhs), i.e. value(ln) − value(rn)
            // pinned to exactly (ro − lo) from both sides.
            let forced = dist[rn][ln] != INF
                && dist[ln][rn] != INF
                && dist[rn][ln] == ro - lo
                && dist[ln][rn] == lo - ro;
            if forced {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Operand::{Const, Var};

    fn sat(cs: &[(Operand, CmpOp, Operand)]) -> bool {
        let mut csp = OrderCsp::new();
        for &(a, op, b) in cs {
            csp.add(a, op, b);
        }
        csp.satisfiable()
    }

    #[test]
    fn empty_is_sat() {
        assert!(OrderCsp::new().satisfiable());
    }

    #[test]
    fn simple_chain_sat() {
        assert!(sat(&[
            (Var(0), CmpOp::Lt, Var(1)),
            (Var(1), CmpOp::Lt, Var(2)),
        ]));
    }

    #[test]
    fn strict_cycle_unsat() {
        assert!(!sat(&[
            (Var(0), CmpOp::Lt, Var(1)),
            (Var(1), CmpOp::Lt, Var(0)),
        ]));
        assert!(!sat(&[(Var(0), CmpOp::Lt, Var(0))]));
    }

    #[test]
    fn nonstrict_cycle_sat_but_forces_equality() {
        // x ≤ y ∧ y ≤ x is satisfiable (x = y) …
        assert!(sat(&[
            (Var(0), CmpOp::Le, Var(1)),
            (Var(1), CmpOp::Le, Var(0)),
        ]));
        // … but adding x ≠ y makes it unsat.
        assert!(!sat(&[
            (Var(0), CmpOp::Le, Var(1)),
            (Var(1), CmpOp::Le, Var(0)),
            (Var(0), CmpOp::Neq, Var(1)),
        ]));
    }

    #[test]
    fn neq_alone_is_sat() {
        assert!(sat(&[(Var(0), CmpOp::Neq, Var(1))]));
        assert!(!sat(&[(Var(0), CmpOp::Neq, Var(0))]));
    }

    #[test]
    fn constants_checked_numerically() {
        assert!(sat(&[(Const(3), CmpOp::Lt, Const(5))]));
        assert!(!sat(&[(Const(5), CmpOp::Lt, Const(3))]));
        assert!(sat(&[(Const(5), CmpOp::Neq, Const(3))]));
        assert!(!sat(&[(Const(5), CmpOp::Neq, Const(5))]));
    }

    #[test]
    fn var_pinned_between_constants() {
        // 3 < x < 5 over Z: x = 4.
        assert!(sat(&[
            (Const(3), CmpOp::Lt, Var(0)),
            (Var(0), CmpOp::Lt, Const(5)),
        ]));
        // 3 < x < 4 over Z: empty.
        assert!(!sat(&[
            (Const(3), CmpOp::Lt, Var(0)),
            (Var(0), CmpOp::Lt, Const(4)),
        ]));
    }

    #[test]
    fn forced_equality_with_constant() {
        // x ≤ 5 ∧ 5 ≤ x forces x = 5; x ≠ 5 contradicts.
        assert!(!sat(&[
            (Var(0), CmpOp::Le, Const(5)),
            (Const(5), CmpOp::Le, Var(0)),
            (Var(0), CmpOp::Neq, Const(5)),
        ]));
        // With slack it is fine: x ≤ 5 ∧ x ≠ 5.
        assert!(sat(&[
            (Var(0), CmpOp::Le, Const(5)),
            (Var(0), CmpOp::Neq, Const(5)),
        ]));
    }

    #[test]
    fn equality_chains_propagate() {
        // x = y, y = z, x ≠ z: unsat.
        assert!(!sat(&[
            (Var(0), CmpOp::Eq, Var(1)),
            (Var(1), CmpOp::Eq, Var(2)),
            (Var(0), CmpOp::Neq, Var(2)),
        ]));
    }

    #[test]
    fn sandwich_forces_equality_transitively() {
        // x ≤ y ≤ z ≤ x forces all equal.
        assert!(!sat(&[
            (Var(0), CmpOp::Le, Var(1)),
            (Var(1), CmpOp::Le, Var(2)),
            (Var(2), CmpOp::Le, Var(0)),
            (Var(0), CmpOp::Neq, Var(2)),
        ]));
    }

    #[test]
    fn ge_gt_work() {
        assert!(sat(&[(Var(0), CmpOp::Gt, Const(10))]));
        assert!(!sat(&[
            (Var(0), CmpOp::Gt, Const(10)),
            (Var(0), CmpOp::Lt, Const(11)),
        ]));
        assert!(sat(&[
            (Var(0), CmpOp::Ge, Const(10)),
            (Var(0), CmpOp::Le, Const(10)),
        ]));
    }

    #[test]
    fn randomized_cross_check_against_enumeration() {
        // Small random systems over 3 variables with domain {0..4}:
        // enumeration finding a solution implies solver-sat; solver-unsat
        // must imply enumeration-unsat. (Bounded enumeration failing does
        // not imply unsat over Z, so only these directions are checked.)
        let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Neq, CmpOp::Eq];
        let mut state = 42u64;
        let mut rnd = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % m) as usize
        };
        for _ in 0..300 {
            let mut cs = Vec::new();
            for _ in 0..4 {
                let a = Var(rnd(3));
                let b = if rnd(4) == 0 {
                    Const(rnd(5) as i64)
                } else {
                    Var(rnd(3))
                };
                cs.push((a, ops[rnd(4)], b));
            }
            let solver = sat(&cs);
            let mut brute = false;
            'outer: for x in 0..5i64 {
                for y in 0..5i64 {
                    for z in 0..5i64 {
                        let val = |o: &Operand| match o {
                            Var(0) => x,
                            Var(1) => y,
                            Var(2) => z,
                            Const(c) => *c,
                            _ => unreachable!(),
                        };
                        if cs
                            .iter()
                            .all(|(a, op, b)| op.apply(val(a).into(), val(b).into()))
                        {
                            brute = true;
                            break 'outer;
                        }
                    }
                }
            }
            if brute {
                assert!(solver, "solver missed a solution for {cs:?}");
            }
            if !solver {
                assert!(!brute, "solver wrongly refuted {cs:?}");
            }
        }
    }
}
