//! Annotated factors: the intermediate representation of the FAQ engine.
//!
//! A [`Factor`] is a relation over a set of query variables in which every
//! row carries a semiring annotation. Two semirings are used (Section 3.1 /
//! Section 6 of the paper):
//!
//! * **Counting** `(ℕ, +, ×)` — annotations are multiplicities; eliminating
//!   a variable sums them. This computes `|q_E(I) ⋈ t|` group-by boundary.
//! * **Boolean** `({0,1}, ∨, ∧)` — set semantics; eliminating a variable is
//!   duplicate-eliminating projection. Used for the inner projection of
//!   non-full queries before the final distinct count.
//!
//! Annotations are `u128`: saturating *down* would under-report sensitivity
//! (a privacy bug), so we use a width that cannot overflow on realistic
//! inputs and checked arithmetic.
//!
//! Storage is flat (one `Vec<Value>` for all rows, parallel weight vector,
//! hash index from row-hash to indices) — factor rows are created and
//! destroyed by the million inside `T_E` computations, so per-row boxing
//! is the enemy.

use dpcq_query::{Predicate, VarId};
use dpcq_relation::fxhash::hash_row;
use dpcq_relation::{FxHashMap, Value};
use std::sync::OnceLock;

/// The bit of `v` in a variable bitset, or 0 for ids past the mask width.
#[inline]
fn var_bit(v: VarId) -> u64 {
    if v.0 < 64 {
        1u64 << v.0
    } else {
        0
    }
}

/// The bitset of a variable list (ids ≥ 64 are not representable and fall
/// back to linear scans in [`Factor::mentions`]).
#[inline]
pub(crate) fn vars_mask(vars: &[VarId]) -> u64 {
    vars.iter().fold(0u64, |m, &v| m | var_bit(v))
}

/// The two aggregation semirings used by the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Semiring {
    /// `(ℕ, +, ×)`: bag counting.
    Counting,
    /// `({0,1}, ∨, ∧)`: set semantics (duplicate elimination).
    Boolean,
}

impl Semiring {
    #[inline]
    fn add(self, a: u128, b: u128) -> u128 {
        match self {
            Semiring::Counting => a.checked_add(b).expect("count overflow"),
            Semiring::Boolean => (a | b).min(1),
        }
    }

    #[inline]
    pub(crate) fn mul(self, a: u128, b: u128) -> u128 {
        match self {
            Semiring::Counting => a.checked_mul(b).expect("count overflow"),
            Semiring::Boolean => (a & b).min(1),
        }
    }
}

/// An annotated relation over a list of variables.
#[derive(Debug)]
pub struct Factor {
    vars: Vec<VarId>,
    /// Bitset of `vars` (ids < 64) so [`Factor::mentions`] is one AND
    /// instead of a linear scan — variable-membership tests dominate the
    /// bucket-selection and predicate-routing inner loops.
    mask: u64,
    /// Flat row storage: row `i` occupies `data[i*arity .. (i+1)*arity]`.
    data: Vec<Value>,
    weights: Vec<u128>,
    /// Row hash -> row indices with that hash.
    index: FxHashMap<u64, Vec<u32>>,
    /// Lazily computed descending-weight row order (see
    /// [`Factor::rows_by_weight_desc`]). Shared `Arc<Factor>`s in the
    /// family memo store thus sort once across all branch-and-bound calls.
    order: OnceLock<Box<[u32]>>,
}

impl Clone for Factor {
    fn clone(&self) -> Self {
        Factor {
            vars: self.vars.clone(),
            mask: self.mask,
            data: self.data.clone(),
            weights: self.weights.clone(),
            index: self.index.clone(),
            // The order is a pure function of `weights`, so carrying it
            // over is sound — but clones are usually about to be mutated,
            // so start fresh rather than copy a cache most clones drop.
            order: OnceLock::new(),
        }
    }
}

impl Factor {
    /// The factor with no variables and a single empty row annotated `1`
    /// (the multiplicative unit; also the paper's `q_∅(I) = {⟨⟩}`).
    pub fn unit() -> Self {
        let mut f = Factor::empty(Vec::new());
        f.add_row(&[], 1, Semiring::Counting);
        f
    }

    /// An empty factor (additive zero) over the given variables.
    pub fn empty(vars: Vec<VarId>) -> Self {
        let mask = vars_mask(&vars);
        Factor {
            vars,
            mask,
            data: Vec::new(),
            weights: Vec::new(),
            index: FxHashMap::default(),
            order: OnceLock::new(),
        }
    }

    /// An empty factor with row capacity reserved.
    pub fn with_capacity(vars: Vec<VarId>, rows: usize) -> Self {
        let arity = vars.len();
        let mask = vars_mask(&vars);
        Factor {
            vars,
            mask,
            data: Vec::with_capacity(rows * arity),
            weights: Vec::with_capacity(rows),
            index: FxHashMap::with_capacity_and_hasher(rows, Default::default()),
            order: OnceLock::new(),
        }
    }

    /// Builds a factor from rows; annotations of duplicate rows are added
    /// in the given semiring.
    pub fn from_rows<I>(vars: Vec<VarId>, rows: I, semiring: Semiring) -> Self
    where
        I: IntoIterator<Item = (Vec<Value>, u128)>,
    {
        let iter = rows.into_iter();
        let mut f = Factor::with_capacity(vars, iter.size_hint().0);
        for (row, w) in iter {
            assert_eq!(row.len(), f.vars.len(), "factor row width mismatch");
            f.add_row(&row, w, semiring);
        }
        f
    }

    /// The arity (number of columns).
    #[inline]
    fn arity(&self) -> usize {
        self.vars.len()
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// The weight of row `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> u128 {
        self.weights[i]
    }

    /// Inserts a row, combining with an existing equal row via the
    /// semiring's `+`.
    pub(crate) fn add_row(&mut self, row: &[Value], w: u128, semiring: Semiring) {
        debug_assert_eq!(row.len(), self.arity());
        if w == 0 {
            return;
        }
        let w = match semiring {
            Semiring::Counting => w,
            Semiring::Boolean => w.min(1),
        };
        if self.order.get().is_some() {
            // Weight updates invalidate the cached descending-weight order.
            self.order = OnceLock::new();
        }
        let h = hash_row(row);
        let a = self.arity();
        let bucket = self.index.entry(h).or_default();
        for &i in bucket.iter() {
            let i = i as usize;
            if &self.data[i * a..(i + 1) * a] == row {
                self.weights[i] = semiring.add(self.weights[i], w);
                return;
            }
        }
        bucket.push(self.weights.len() as u32);
        self.data.extend_from_slice(row);
        self.weights.push(w);
    }

    /// The factor's variables, in column order.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Whether the factor mentions `v`.
    #[inline]
    pub fn mentions(&self, v: VarId) -> bool {
        if v.0 < 64 {
            self.mask & (1u64 << v.0) != 0
        } else {
            self.vars.contains(&v)
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the factor has no rows (the additive zero).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates over `(row, annotation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], u128)> {
        (0..self.len()).map(|i| (self.row(i), self.weights[i]))
    }

    /// The largest annotation, or 0 for an empty factor. This is the final
    /// `max` aggregation of `T_E`.
    pub fn max_annotation(&self) -> u128 {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// The total annotation (the `+` aggregation over everything).
    ///
    /// Checked, like every other annotation combination in this module:
    /// silently wrapping here would under-report a sensitivity.
    pub fn total(&self) -> u128 {
        self.weights
            .iter()
            .fold(0u128, |acc, &w| acc.checked_add(w).expect("count overflow"))
    }

    /// The annotation of the single row of a nullary factor
    /// (0 if the factor is empty).
    ///
    /// # Panics
    /// Panics if the factor still has variables.
    pub fn scalar(&self) -> u128 {
        assert!(self.vars.is_empty(), "scalar() on non-nullary factor");
        self.weights.first().copied().unwrap_or(0)
    }

    /// Natural join of two factors, multiplying annotations in the given
    /// semiring. Columns of `self` come first, followed by `other`'s
    /// non-shared columns. Disjoint variable sets produce a cross product.
    ///
    /// This is [`Factor::join_eliminate`] with an empty drop set.
    pub fn join(&self, other: &Factor, semiring: Semiring) -> Factor {
        self.join_core(other, &[], semiring)
    }

    /// Fused join + eliminate: like [`Factor::join`] followed by
    /// [`Factor::eliminate`], but dropped columns never enter the output,
    /// so the (often huge) intermediate join is never materialized. This
    /// is the classic FAQ/AJAR aggregation push-down.
    pub fn join_eliminate(&self, other: &Factor, drop: &[VarId], semiring: Semiring) -> Factor {
        self.join_core(other, drop, semiring)
    }

    /// Shared build/probe hash-join body behind [`Factor::join`] and
    /// [`Factor::join_eliminate`]: hash the smaller side on the shared
    /// variables, stream the larger side, and keep only the output columns
    /// not listed in `drop` (annotations of collapsing rows combine via
    /// the semiring's `+`).
    fn join_core(&self, other: &Factor, drop: &[VarId], semiring: Semiring) -> Factor {
        let (build, probe) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let shared: Vec<VarId> = build
            .vars
            .iter()
            .copied()
            .filter(|v| probe.mentions(*v))
            .collect();
        let build_shared_pos: Vec<usize> = shared
            .iter()
            .map(|v| build.vars.iter().position(|w| w == v).expect("shared var"))
            .collect();
        let probe_shared_pos: Vec<usize> = shared
            .iter()
            .map(|v| probe.vars.iter().position(|w| w == v).expect("shared var"))
            .collect();

        let mut key = vec![Value::default(); shared.len()];
        let mut index: FxHashMap<u64, Vec<u32>> =
            FxHashMap::with_capacity_and_hasher(build.len(), Default::default());
        for i in 0..build.len() {
            let row = build.row(i);
            for (k, &p) in key.iter_mut().zip(&build_shared_pos) {
                *k = row[p];
            }
            index.entry(hash_row(&key)).or_default().push(i as u32);
        }
        let key_matches = |bi: usize, key: &[Value]| -> bool {
            let row = build.row(bi);
            build_shared_pos.iter().zip(key).all(|(&p, k)| row[p] == *k)
        };

        let out_vars: Vec<VarId> = self
            .vars
            .iter()
            .copied()
            .chain(other.vars.iter().copied().filter(|v| !self.mentions(*v)))
            .filter(|v| !drop.contains(v))
            .collect();
        let out_pos: Vec<(bool, usize)> = out_vars
            .iter()
            .map(|v| {
                if let Some(p) = build.vars.iter().position(|w| w == v) {
                    (true, p)
                } else {
                    (
                        false,
                        probe
                            .vars
                            .iter()
                            .position(|w| w == v)
                            .expect("var in probe"),
                    )
                }
            })
            .collect();

        let mut out = Factor::with_capacity(out_vars, probe.len().min(1 << 16));
        let mut out_row = vec![Value::default(); out.vars.len()];
        for pi in 0..probe.len() {
            let prow = probe.row(pi);
            for (k, &p) in key.iter_mut().zip(&probe_shared_pos) {
                *k = prow[p];
            }
            let Some(bucket) = index.get(&hash_row(&key)) else {
                continue;
            };
            for &bi in bucket {
                let bi = bi as usize;
                if !key_matches(bi, &key) {
                    continue;
                }
                let brow = build.row(bi);
                for (slot, &(from_build, p)) in out_row.iter_mut().zip(&out_pos) {
                    *slot = if from_build { brow[p] } else { prow[p] };
                }
                out.add_row(
                    &out_row,
                    semiring.mul(build.weights[bi], probe.weights[pi]),
                    semiring,
                );
            }
        }
        out
    }

    /// Substitutes variables per the union-find representative table
    /// `rep[var_id] = class representative var id`: columns falling into
    /// the same class are checked for equality (rows violating it drop
    /// out) and collapsed into one column named `VarId(rep)`.
    ///
    /// Used by the inclusion–exclusion evaluation of inequality
    /// predicates, where each term imposes a set of variable equalities.
    pub fn merge_columns(&self, rep: &[usize], semiring: Semiring) -> Factor {
        let mut out_vars: Vec<VarId> = Vec::with_capacity(self.vars.len());
        // For each column: the output position it feeds, or a column it
        // must agree with.
        let mut proj: Vec<usize> = Vec::with_capacity(self.vars.len());
        for v in &self.vars {
            let r = VarId(rep[v.0]);
            match out_vars.iter().position(|w| *w == r) {
                Some(p) => proj.push(p),
                None => {
                    out_vars.push(r);
                    proj.push(out_vars.len() - 1);
                }
            }
        }
        let width = out_vars.len();
        if width == self.vars.len() && out_vars.iter().zip(&self.vars).all(|(a, b)| a == b) {
            return self.clone();
        }
        let mut out = Factor::with_capacity(out_vars, self.len());
        let mut buf = vec![None::<Value>; width];
        'rows: for i in 0..self.len() {
            let row = self.row(i);
            buf.iter_mut().for_each(|b| *b = None);
            for (&val, &p) in row.iter().zip(&proj) {
                match buf[p] {
                    None => buf[p] = Some(val),
                    Some(prev) if prev != val => continue 'rows,
                    Some(_) => {}
                }
            }
            let merged: Vec<Value> = buf.iter().map(|b| b.expect("all filled")).collect();
            out.add_row(&merged, self.weights[i], semiring);
        }
        out
    }

    /// Eliminates (aggregates away) the given variables, combining
    /// annotations of collapsing rows with the semiring's `+`.
    pub fn eliminate(&self, drop: &[VarId], semiring: Semiring) -> Factor {
        if drop.iter().all(|v| !self.mentions(*v)) {
            return self.clone();
        }
        let keep_pos: Vec<usize> = (0..self.vars.len())
            .filter(|&i| !drop.contains(&self.vars[i]))
            .collect();
        let out_vars: Vec<VarId> = keep_pos.iter().map(|&i| self.vars[i]).collect();
        let mut out = Factor::with_capacity(out_vars, self.len());
        let mut row_buf = vec![Value::default(); keep_pos.len()];
        for i in 0..self.len() {
            let row = self.row(i);
            for (slot, &p) in row_buf.iter_mut().zip(&keep_pos) {
                *slot = row[p];
            }
            out.add_row(&row_buf, self.weights[i], semiring);
        }
        out
    }

    /// Keeps only rows satisfying all predicates. Every predicate's
    /// variables must be columns of this factor.
    ///
    /// # Panics
    /// Panics if a predicate mentions a variable not in this factor.
    pub fn filter(&mut self, preds: &[Predicate]) {
        if preds.is_empty() {
            return;
        }
        // Resolve predicate variables to column positions once.
        let resolved: Vec<(Predicate, Vec<usize>)> = preds
            .iter()
            .map(|p| {
                let pos = p
                    .variables()
                    .iter()
                    .map(|v| {
                        self.vars
                            .iter()
                            .position(|w| w == v)
                            .expect("predicate variable not in factor during filter")
                    })
                    .collect();
                (*p, pos)
            })
            .collect();
        let a = self.arity();
        let keep = |row: &[Value]| {
            resolved.iter().all(|(p, pos)| {
                p.eval(|v| {
                    let vi = p.variables().iter().position(|w| *w == v).expect("own var");
                    row[pos[vi]]
                })
            })
        };
        let mut out = Factor::with_capacity(self.vars.clone(), self.len());
        for i in 0..self.len() {
            let row = &self.data[i * a..(i + 1) * a];
            if keep(row) {
                out.add_row(row, self.weights[i], Semiring::Counting);
            }
        }
        *self = out;
    }

    /// Clamps all annotations to 1 (converts a counting factor to Boolean).
    pub fn to_boolean(&self) -> Factor {
        let mut out = self.clone();
        for w in out.weights.iter_mut() {
            *w = 1;
        }
        // Direct weight mutation: the cached order (had clone carried one)
        // would no longer be descending, which the branch-and-bound's
        // early-exit pruning relies on.
        out.order = OnceLock::new();
        out
    }

    /// Row indices sorted by descending weight (used by the final-stage
    /// branch-and-bound maximizer). Computed once per factor and cached;
    /// factors shared through the family memo store amortize the sort
    /// across every branch-and-bound that visits them.
    pub(crate) fn rows_by_weight_desc(&self) -> &[u32] {
        self.order.get_or_init(|| {
            let mut idx: Vec<u32> = (0..self.len() as u32).collect();
            idx.sort_by_key(|&i| std::cmp::Reverse(self.weights[i as usize]));
            idx.into_boxed_slice()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcq_query::{CmpOp, Term};

    fn v(i: i64) -> Value {
        Value(i)
    }

    fn fx(vars: &[usize], rows: &[(&[i64], u128)]) -> Factor {
        Factor::from_rows(
            vars.iter().map(|&i| VarId(i)).collect(),
            rows.iter()
                .map(|(r, w)| (r.iter().map(|&x| v(x)).collect(), *w)),
            Semiring::Counting,
        )
    }

    fn weight_at(f: &Factor, row: &[Value]) -> u128 {
        f.iter()
            .find(|(r, _)| *r == row)
            .map(|(_, w)| w)
            .unwrap_or(0)
    }

    #[test]
    fn unit_and_scalar() {
        let u = Factor::unit();
        assert_eq!(u.scalar(), 1);
        assert_eq!(u.len(), 1);
        assert_eq!(Factor::empty(vec![]).scalar(), 0);
    }

    #[test]
    fn from_rows_accumulates() {
        let f = fx(&[0], &[(&[1], 2), (&[1], 3), (&[2], 1)]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.total(), 6);
        assert_eq!(f.max_annotation(), 5);
    }

    #[test]
    fn boolean_from_rows_clamps() {
        let f = Factor::from_rows(
            vec![VarId(0)],
            [(vec![v(1)], 5), (vec![v(1)], 7)],
            Semiring::Boolean,
        );
        assert_eq!(f.total(), 1);
    }

    #[test]
    fn join_on_shared_var() {
        // R(x,y) = {(1,2),(1,3),(2,3)}, S(y,z) = {(2,9),(3,9)}
        let r = fx(&[0, 1], &[(&[1, 2], 1), (&[1, 3], 1), (&[2, 3], 1)]);
        let s = fx(&[1, 2], &[(&[2, 9], 1), (&[3, 9], 1)]);
        let j = r.join(&s, Semiring::Counting);
        assert_eq!(j.vars(), &[VarId(0), VarId(1), VarId(2)]);
        assert_eq!(j.total(), 3);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn join_multiplies_annotations() {
        let a = fx(&[0], &[(&[1], 2)]);
        let b = fx(&[0], &[(&[1], 3)]);
        let j = a.join(&b, Semiring::Counting);
        assert_eq!(weight_at(&j, &[v(1)]), 6);
    }

    #[test]
    fn cross_product_when_disjoint() {
        let a = fx(&[0], &[(&[1], 1), (&[2], 1)]);
        let b = fx(&[1], &[(&[7], 1), (&[8], 1), (&[9], 1)]);
        let j = a.join(&b, Semiring::Counting);
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn join_column_order_is_self_then_other() {
        let a = fx(&[2], &[(&[5], 1)]);
        let b = fx(&[0, 2], &[(&[1, 5], 1)]);
        let j = a.join(&b, Semiring::Counting);
        assert_eq!(j.vars(), &[VarId(2), VarId(0)]);
    }

    #[test]
    fn eliminate_sums() {
        let f = fx(&[0, 1], &[(&[1, 10], 2), (&[1, 20], 3), (&[2, 30], 4)]);
        let g = f.eliminate(&[VarId(1)], Semiring::Counting);
        assert_eq!(g.vars(), &[VarId(0)]);
        assert_eq!(g.max_annotation(), 5);
        assert_eq!(g.total(), 9);
    }

    #[test]
    fn eliminate_boolean_dedups() {
        let f = fx(&[0, 1], &[(&[1, 10], 1), (&[1, 20], 1)]);
        let g = f.to_boolean().eliminate(&[VarId(1)], Semiring::Boolean);
        assert_eq!(g.total(), 1);
    }

    #[test]
    fn eliminate_everything_gives_scalar() {
        let f = fx(&[0, 1], &[(&[1, 10], 2), (&[2, 20], 3)]);
        let g = f.eliminate(&[VarId(0), VarId(1)], Semiring::Counting);
        assert_eq!(g.scalar(), 5);
    }

    #[test]
    fn eliminate_noop_when_vars_absent() {
        let f = fx(&[0], &[(&[1], 1)]);
        let g = f.eliminate(&[VarId(5)], Semiring::Counting);
        assert_eq!(g.len(), 1);
        assert_eq!(g.vars(), &[VarId(0)]);
    }

    #[test]
    fn filter_applies_predicates() {
        let mut f = fx(&[0, 1], &[(&[1, 1], 1), (&[1, 2], 1), (&[2, 1], 1)]);
        f.filter(&[Predicate::neq(VarId(0), VarId(1))]);
        assert_eq!(f.len(), 2);
        let mut g = fx(&[0], &[(&[1], 1), (&[5], 1)]);
        g.filter(&[Predicate::new(
            Term::Var(VarId(0)),
            CmpOp::Lt,
            Term::Const(v(3)),
        )]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    #[should_panic(expected = "predicate variable not in factor")]
    fn filter_panics_on_foreign_var() {
        let mut f = fx(&[0], &[(&[1], 1)]);
        f.filter(&[Predicate::neq(VarId(0), VarId(9))]);
    }

    #[test]
    fn rows_by_weight_desc_sorted() {
        let f = fx(&[0], &[(&[1], 2), (&[2], 9), (&[3], 5)]);
        let order = f.rows_by_weight_desc();
        let weights: Vec<u128> = order.iter().map(|&i| f.weight(i as usize)).collect();
        assert_eq!(weights, vec![9, 5, 2]);
    }

    #[test]
    fn join_eliminate_matches_join_then_eliminate() {
        let r = fx(&[0, 1], &[(&[1, 2], 1), (&[1, 3], 2), (&[2, 3], 1)]);
        let s = fx(&[1, 2], &[(&[2, 9], 3), (&[3, 9], 1), (&[3, 8], 1)]);
        for drop in [
            vec![VarId(1)],
            vec![VarId(0), VarId(1)],
            vec![],
            vec![VarId(2)],
        ] {
            let fused = r.join_eliminate(&s, &drop, Semiring::Counting);
            let staged = r
                .join(&s, Semiring::Counting)
                .eliminate(&drop, Semiring::Counting);
            assert_eq!(fused.len(), staged.len(), "drop {drop:?}");
            for (row, w) in staged.iter() {
                assert_eq!(weight_at(&fused, row), w, "drop {drop:?}");
            }
        }
    }

    #[test]
    fn merge_columns_identity_and_collapse() {
        let f = fx(&[0, 1], &[(&[1, 1], 2), (&[1, 2], 1), (&[3, 3], 1)]);
        let n = 4;
        let identity: Vec<usize> = (0..n).collect();
        let same = f.merge_columns(&identity, Semiring::Counting);
        assert_eq!(same.len(), 3);
        // Merge var 1 into var 0: keeps only diagonal rows.
        let mut rep = identity.clone();
        rep[1] = 0;
        let merged = f.merge_columns(&rep, Semiring::Counting);
        assert_eq!(merged.vars(), &[VarId(0)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(weight_at(&merged, &[v(1)]), 2);
        assert_eq!(weight_at(&merged, &[v(3)]), 1);
    }

    #[test]
    fn merge_columns_renames_to_representative() {
        let f = fx(&[2], &[(&[5], 1)]);
        let mut rep: Vec<usize> = (0..4).collect();
        rep[2] = 0; // class {0, 2} represented by 0
        let merged = f.merge_columns(&rep, Semiring::Counting);
        assert_eq!(merged.vars(), &[VarId(0)]);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn large_factor_roundtrip() {
        // Exercise the flat storage + collision chains a bit harder.
        let rows: Vec<(Vec<Value>, u128)> = (0..10_000i64)
            .map(|i| (vec![v(i % 500), v(i / 500)], 1))
            .collect();
        let f = Factor::from_rows(vec![VarId(0), VarId(1)], rows, Semiring::Counting);
        assert_eq!(f.len(), 10_000);
        assert_eq!(f.total(), 10_000);
        let g = f.eliminate(&[VarId(1)], Semiring::Counting);
        assert_eq!(g.len(), 500);
        assert_eq!(g.max_annotation(), 20);
    }
}
