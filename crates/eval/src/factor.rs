//! Annotated factors: the columnar intermediate representation of the FAQ
//! engine.
//!
//! A [`Factor`] is a relation over a set of query variables in which every
//! row carries a semiring annotation. Two semirings are used (Section 3.1 /
//! Section 6 of the paper):
//!
//! * **Counting** `(ℕ, +, ×)` — annotations are multiplicities; eliminating
//!   a variable sums them. This computes `|q_E(I) ⋈ t|` group-by boundary.
//! * **Boolean** `({0,1}, ∨, ∧)` — set semantics; eliminating a variable is
//!   duplicate-eliminating projection. Used for the inner projection of
//!   non-full queries before the final distinct count.
//!
//! Annotations are `u128`: saturating *down* would under-report sensitivity
//! (a privacy bug), so we use a width that cannot overflow on realistic
//! inputs and checked arithmetic.
//!
//! # Storage: code-compressed columnar rows
//!
//! Rows are stored flat — row `i` occupies `codes[i*arity .. (i+1)*arity]`
//! with a parallel weight vector — and the cells are **`u32` dictionary
//! codes**, not raw [`Value`]s: every value is interned once into an
//! evaluation-scoped [`Domain`](crate::domain) (built by
//! [`crate::Evaluator::new`] and frozen behind an `Arc`). Tuples are half
//! the size of the old `i64` layout, cell comparisons are single-word, and
//! join keys of up to two columns pack into one `u64`. Codes decode back
//! to values only at the consumer boundary: [`Factor::row`]/[`Factor::iter`]
//! materialize a lazy decoded view, and predicate evaluation decodes cell
//! by cell (order predicates must compare *values*, not codes).
//!
//! # Aggregation: sort-based run merging
//!
//! `join`/`join_eliminate`/`eliminate`/`merge_columns` do not dedup output
//! rows through a hash table. They emit unaggregated rows into a per-thread
//! [`Scratch`](crate::domain) arena, sort by the packed key (`u64` for
//! arities ≤ 2, `u128` for ≤ 4, index-permutation otherwise), and merge
//! equal-key runs with the semiring's `+` in one pass — no per-row hashing,
//! no hash-map churn, exact-size output allocations.
//!
//! # Indexes and caches materialize lazily, once
//!
//! The build-side hash join index is **retained on the factor** per key
//! set (like the cached descending-weight order): memoized `Arc<Factor>`
//! intermediates in the family store are indexed once and probed many
//! times across subsets and worker threads. The decoded value view and
//! the weight order are `OnceLock`s with the same lifecycle. All three
//! caches reset on mutation (`filter`) and are not carried by `clone()`.

use crate::domain::{with_scratch, Domain, Scratch, SortBuf};
use dpcq_query::{Predicate, VarId};
use dpcq_relation::fxhash::hash_codes;
use dpcq_relation::{FxHashMap, Value};
use std::sync::{Arc, Mutex, OnceLock};

/// The bit of `v` in a variable bitset, or 0 for ids past the mask width.
#[inline]
fn var_bit(v: VarId) -> u128 {
    if v.0 < 128 {
        1u128 << v.0
    } else {
        0
    }
}

/// The bitset of a variable list (ids ≥ 128 are not representable and fall
/// back to linear scans in [`Factor::mentions`]).
#[inline]
pub(crate) fn vars_mask(vars: &[VarId]) -> u128 {
    vars.iter().fold(0u128, |m, &v| m | var_bit(v))
}

/// The two aggregation semirings used by the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Semiring {
    /// `(ℕ, +, ×)`: bag counting.
    Counting,
    /// `({0,1}, ∨, ∧)`: set semantics (duplicate elimination).
    Boolean,
}

impl Semiring {
    /// Canonicalizes an externally supplied annotation into the semiring
    /// (Boolean clamps to `{0, 1}`).
    #[inline]
    pub(crate) fn lift(self, w: u128) -> u128 {
        match self {
            Semiring::Counting => w,
            Semiring::Boolean => w.min(1),
        }
    }

    #[inline]
    pub(crate) fn add(self, a: u128, b: u128) -> u128 {
        match self {
            Semiring::Counting => a.checked_add(b).expect("count overflow"),
            Semiring::Boolean => (a | b).min(1),
        }
    }

    #[inline]
    pub(crate) fn mul(self, a: u128, b: u128) -> u128 {
        match self {
            Semiring::Counting => a.checked_mul(b).expect("count overflow"),
            Semiring::Boolean => (a & b).min(1),
        }
    }
}

/// A retained build-side join index: row indices grouped by join-key id.
///
/// Key ids are the packed key codes when the key has ≤ 2 columns (exact —
/// no per-row verification needed at probe time) and [`hash_codes`] hashes
/// otherwise (probes verify the actual key codes within the bucket).
#[derive(Debug)]
struct JoinIndex {
    /// Build-side row indices, all rows of one key id contiguous.
    rows: Box<[u32]>,
    /// Key id → `(start, len)` run in `rows`.
    buckets: FxHashMap<u64, (u32, u32)>,
}

/// Retained join indexes of one factor: `(key column positions, index)`
/// pairs (usually one or two entries, scanned linearly).
type JoinIndexCache = Mutex<Vec<(Box<[u32]>, Arc<JoinIndex>)>>;

/// The id of a join key: packed codes when `exact`, a hash otherwise.
#[inline]
fn key_id(key: &[u32], exact: bool) -> u64 {
    if exact {
        match *key {
            [] => 0,
            [a] => a as u64,
            [a, b] => ((a as u64) << 32) | b as u64,
            _ => unreachable!("exact join keys have at most 2 columns"),
        }
    } else {
        hash_codes(key)
    }
}

/// Aggregates unaggregated `(row, weight)` pairs (flat `codes` of the given
/// `arity`, parallel `weights`) into exact-size deduplicated storage:
/// sort by key, merge equal runs with the semiring's `+`. Zero-weight rows
/// are dropped; Boolean annotations are clamped.
fn aggregate(
    arity: usize,
    semiring: Semiring,
    codes: &[u32],
    weights: &[u128],
    sort: &mut SortBuf,
) -> (Vec<u32>, Vec<u128>) {
    let n = weights.len();
    debug_assert_eq!(codes.len(), arity * n);
    if arity == 0 {
        let mut acc = 0u128;
        let mut any = false;
        for &w in weights {
            if w != 0 {
                acc = if any {
                    semiring.add(acc, semiring.lift(w))
                } else {
                    semiring.lift(w)
                };
                any = true;
            }
        }
        return if any {
            (Vec::new(), vec![acc])
        } else {
            (Vec::new(), Vec::new())
        };
    }

    /// Merges the sorted `(key, row)` pairs into exact-size output; `emit`
    /// copies the representative row of a run from the source codes.
    fn merge_runs<K: Copy + PartialEq>(
        pairs: &[(K, u32)],
        arity: usize,
        semiring: Semiring,
        codes: &[u32],
        weights: &[u128],
    ) -> (Vec<u32>, Vec<u128>) {
        let m = pairs.len();
        let mut runs = 0usize;
        let mut i = 0;
        while i < m {
            let k = pairs[i].0;
            while i < m && pairs[i].0 == k {
                i += 1;
            }
            runs += 1;
        }
        let mut out_codes = Vec::with_capacity(runs * arity);
        let mut out_weights = Vec::with_capacity(runs);
        let mut i = 0;
        while i < m {
            let k = pairs[i].0;
            let first = pairs[i].1 as usize;
            let mut acc = semiring.lift(weights[first]);
            i += 1;
            while i < m && pairs[i].0 == k {
                acc = semiring.add(acc, semiring.lift(weights[pairs[i].1 as usize]));
                i += 1;
            }
            out_codes.extend_from_slice(&codes[first * arity..(first + 1) * arity]);
            out_weights.push(acc);
        }
        (out_codes, out_weights)
    }

    match arity {
        1 | 2 => {
            let pairs = &mut sort.k64;
            pairs.clear();
            pairs.reserve(n);
            for i in 0..n {
                if weights[i] == 0 {
                    continue;
                }
                let key = if arity == 1 {
                    codes[i] as u64
                } else {
                    ((codes[2 * i] as u64) << 32) | codes[2 * i + 1] as u64
                };
                pairs.push((key, i as u32));
            }
            pairs.sort_unstable();
            merge_runs(pairs, arity, semiring, codes, weights)
        }
        3 | 4 => {
            let pairs = &mut sort.k128;
            pairs.clear();
            pairs.reserve(n);
            for i in 0..n {
                if weights[i] == 0 {
                    continue;
                }
                let row = &codes[i * arity..(i + 1) * arity];
                let mut key = 0u128;
                for &c in row {
                    key = (key << 32) | c as u128;
                }
                pairs.push((key, i as u32));
            }
            pairs.sort_unstable();
            merge_runs(pairs, arity, semiring, codes, weights)
        }
        _ => {
            let idx = &mut sort.idx;
            idx.clear();
            idx.reserve(n);
            for (i, &w) in weights.iter().enumerate() {
                if w != 0 {
                    idx.push(i as u32);
                }
            }
            let row = |i: u32| &codes[i as usize * arity..(i as usize + 1) * arity];
            idx.sort_unstable_by(|&a, &b| row(a).cmp(row(b)));
            // Reuse the run merger by pairing each index with itself as the
            // key surrogate is impossible (keys are slices), so merge here.
            let m = idx.len();
            let mut runs = 0usize;
            let mut i = 0;
            while i < m {
                let r = row(idx[i]);
                while i < m && row(idx[i]) == r {
                    i += 1;
                }
                runs += 1;
            }
            let mut out_codes = Vec::with_capacity(runs * arity);
            let mut out_weights = Vec::with_capacity(runs);
            let mut i = 0;
            while i < m {
                let first = idx[i];
                let r = row(first);
                let mut acc = semiring.lift(weights[first as usize]);
                i += 1;
                while i < m && row(idx[i]) == r {
                    acc = semiring.add(acc, semiring.lift(weights[idx[i] as usize]));
                    i += 1;
                }
                out_codes.extend_from_slice(r);
                out_weights.push(acc);
            }
            (out_codes, out_weights)
        }
    }
}

/// An annotated relation over a list of variables (columnar, code-
/// compressed storage — see the module docs).
#[derive(Debug)]
pub struct Factor {
    vars: Vec<VarId>,
    /// Bitset of `vars` (ids < 128) so [`Factor::mentions`] is one AND
    /// instead of a linear scan — variable-membership tests dominate the
    /// bucket-selection and predicate-routing inner loops.
    mask: u128,
    /// Flat code storage: row `i` occupies `codes[i*arity .. (i+1)*arity]`.
    codes: Vec<u32>,
    weights: Vec<u128>,
    /// The value ↔ code map these rows are encoded against (shared with
    /// every factor of the same evaluation).
    domain: Arc<Domain>,
    /// Lazily decoded value view backing the public [`Factor::row`] /
    /// [`Factor::iter`] API; the kernel itself never touches it.
    decoded: OnceLock<Box<[Value]>>,
    /// Retained build-side join indexes, one per key-column set. Shared
    /// `Arc<Factor>`s in the family memo store index once, probe many
    /// times across subsets and threads.
    joins: JoinIndexCache,
    /// Lazily computed descending-weight row order (see
    /// [`Factor::rows_by_weight_desc`]). Shared `Arc<Factor>`s in the
    /// family memo store thus sort once across all branch-and-bound calls.
    order: OnceLock<Box<[u32]>>,
}

impl Clone for Factor {
    fn clone(&self) -> Self {
        // Caches (decoded view, join indexes, weight order) are pure
        // functions of the rows, so carrying them over would be sound —
        // but clones are usually about to be mutated, so start fresh
        // rather than copy caches most clones drop.
        Factor::from_parts(
            self.vars.clone(),
            Arc::clone(&self.domain),
            self.codes.clone(),
            self.weights.clone(),
        )
    }
}

impl Factor {
    /// Assembles a factor from already aggregated parts with fresh caches.
    pub(crate) fn from_parts(
        vars: Vec<VarId>,
        domain: Arc<Domain>,
        codes: Vec<u32>,
        weights: Vec<u128>,
    ) -> Self {
        let mask = vars_mask(&vars);
        Factor {
            vars,
            mask,
            codes,
            weights,
            domain,
            decoded: OnceLock::new(),
            joins: Mutex::new(Vec::new()),
            order: OnceLock::new(),
        }
    }

    /// Builds a factor from raw (possibly duplicated, possibly zero-weight)
    /// coded rows: annotations of equal rows combine via the semiring's `+`
    /// through one sort-and-merge pass.
    pub(crate) fn from_coded(
        vars: Vec<VarId>,
        domain: Arc<Domain>,
        codes: Vec<u32>,
        weights: Vec<u128>,
        semiring: Semiring,
    ) -> Self {
        let arity = vars.len();
        let (codes, weights) =
            with_scratch(|s| aggregate(arity, semiring, &codes, &weights, &mut s.sort));
        Factor::from_parts(vars, domain, codes, weights)
    }

    /// The factor with no variables and a single empty row annotated `1`
    /// (the multiplicative unit; also the paper's `q_∅(I) = {⟨⟩}`).
    pub fn unit() -> Self {
        Factor::from_parts(Vec::new(), Arc::new(Domain::new()), Vec::new(), vec![1])
    }

    /// An empty factor (additive zero) over the given variables.
    pub fn empty(vars: Vec<VarId>) -> Self {
        Factor::from_parts(vars, Arc::new(Domain::new()), Vec::new(), Vec::new())
    }

    /// Builds a factor from value rows; annotations of duplicate rows are
    /// added in the given semiring. The factor gets its own private domain
    /// — factors meant to be joined against an evaluator's factors are
    /// built through the evaluator instead, sharing its domain.
    pub fn from_rows<I>(vars: Vec<VarId>, rows: I, semiring: Semiring) -> Self
    where
        I: IntoIterator<Item = (Vec<Value>, u128)>,
    {
        let arity = vars.len();
        let iter = rows.into_iter();
        let hint = iter.size_hint().0;
        let mut domain = Domain::new();
        let mut codes: Vec<u32> = Vec::with_capacity(hint * arity);
        let mut weights: Vec<u128> = Vec::with_capacity(hint);
        for (row, w) in iter {
            assert_eq!(row.len(), arity, "factor row width mismatch");
            if w == 0 {
                continue;
            }
            for &v in &row {
                codes.push(domain.intern(v));
            }
            weights.push(w);
        }
        Factor::from_coded(vars, Arc::new(domain), codes, weights, semiring)
    }

    /// The arity (number of columns).
    #[inline]
    fn arity(&self) -> usize {
        self.vars.len()
    }

    /// The shared value ↔ code map.
    #[inline]
    pub(crate) fn domain(&self) -> &Arc<Domain> {
        &self.domain
    }

    /// Row `i` as a slice of codes (the kernel-internal view).
    #[inline]
    pub(crate) fn row_codes(&self, i: usize) -> &[u32] {
        let a = self.arity();
        &self.codes[i * a..(i + 1) * a]
    }

    /// The lazily decoded value view (built once per factor, only when a
    /// consumer asks for values).
    fn decoded(&self) -> &[Value] {
        self.decoded
            .get_or_init(|| self.codes.iter().map(|&c| self.domain.value(c)).collect())
    }

    /// Row `i` as a slice of values (decoded lazily; the hot kernel runs
    /// on [`Factor::row_codes`]).
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        let a = self.arity();
        &self.decoded()[i * a..(i + 1) * a]
    }

    /// The weight of row `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> u128 {
        self.weights[i]
    }

    /// The factor's variables, in column order.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Whether the factor mentions `v`.
    #[inline]
    pub fn mentions(&self, v: VarId) -> bool {
        if v.0 < 128 {
            self.mask & (1u128 << v.0) != 0
        } else {
            self.vars.contains(&v)
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the factor has no rows (the additive zero).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates over `(row, annotation)` pairs (values, decoded lazily).
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], u128)> {
        (0..self.len()).map(|i| (self.row(i), self.weights[i]))
    }

    /// The largest annotation, or 0 for an empty factor. This is the final
    /// `max` aggregation of `T_E`.
    pub fn max_annotation(&self) -> u128 {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// The total annotation (the `+` aggregation over everything).
    ///
    /// Checked, like every other annotation combination in this module:
    /// silently wrapping here would under-report a sensitivity.
    pub fn total(&self) -> u128 {
        self.weights
            .iter()
            .fold(0u128, |acc, &w| acc.checked_add(w).expect("count overflow"))
    }

    /// The annotation of the single row of a nullary factor
    /// (0 if the factor is empty).
    ///
    /// # Panics
    /// Panics if the factor still has variables.
    pub fn scalar(&self) -> u128 {
        assert!(self.vars.is_empty(), "scalar() on non-nullary factor");
        self.weights.first().copied().unwrap_or(0)
    }

    /// Natural join of two factors, multiplying annotations in the given
    /// semiring. Columns of `self` come first, followed by `other`'s
    /// non-shared columns. Disjoint variable sets produce a cross product.
    ///
    /// This is [`Factor::join_eliminate`] with an empty drop set.
    pub fn join(&self, other: &Factor, semiring: Semiring) -> Factor {
        self.join_core(other, &[], semiring)
    }

    /// Fused join + eliminate: like [`Factor::join`] followed by
    /// [`Factor::eliminate`], but dropped columns never enter the output,
    /// so the (often huge) intermediate join is never materialized. This
    /// is the classic FAQ/AJAR aggregation push-down.
    pub fn join_eliminate(&self, other: &Factor, drop: &[VarId], semiring: Semiring) -> Factor {
        self.join_core(other, drop, semiring)
    }

    /// Shared join body behind [`Factor::join`] and
    /// [`Factor::join_eliminate`]: probe the smaller side's retained hash
    /// index with the larger side, emit only the output columns not listed
    /// in `drop` into the scratch arena, and run aggregation merges
    /// collapsing rows via the semiring's `+`.
    fn join_core(&self, other: &Factor, drop: &[VarId], semiring: Semiring) -> Factor {
        // Domain unification. The hot path — every factor of one
        // evaluation — shares a single `Arc<Domain>` and takes the
        // pointer-equality branch; independently built factors (tests,
        // ad hoc use) merge domains and re-encode the other side once.
        let other_remapped: Factor;
        let (domain, other) = if Arc::ptr_eq(&self.domain, &other.domain) || other.domain.is_empty()
        {
            (Arc::clone(&self.domain), other)
        } else if self.domain.is_empty() {
            (Arc::clone(&other.domain), other)
        } else {
            let mut merged = (*self.domain).clone();
            let remap: Vec<u32> = other
                .domain
                .values()
                .iter()
                .map(|&v| merged.intern(v))
                .collect();
            let merged = Arc::new(merged);
            other_remapped = Factor::from_parts(
                other.vars.clone(),
                Arc::clone(&merged),
                other.codes.iter().map(|&c| remap[c as usize]).collect(),
                other.weights.clone(),
            );
            (merged, &other_remapped)
        };

        let (build, probe) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        // Canonical (sorted) shared-variable order so the retained build
        // index is keyed identically no matter which side probes it.
        let mut shared: Vec<VarId> = build
            .vars
            .iter()
            .copied()
            .filter(|v| probe.mentions(*v))
            .collect();
        shared.sort_unstable();
        let build_key_pos: Vec<usize> = shared
            .iter()
            .map(|v| build.vars.iter().position(|w| w == v).expect("shared var"))
            .collect();
        let probe_key_pos: Vec<usize> = shared
            .iter()
            .map(|v| probe.vars.iter().position(|w| w == v).expect("shared var"))
            .collect();
        let exact = shared.len() <= 2;

        let out_vars: Vec<VarId> = self
            .vars
            .iter()
            .copied()
            .chain(other.vars.iter().copied().filter(|v| !self.mentions(*v)))
            .filter(|v| !drop.contains(v))
            .collect();
        let out_arity = out_vars.len();
        let out_pos: Vec<(bool, usize)> = out_vars
            .iter()
            .map(|v| {
                if let Some(p) = build.vars.iter().position(|w| w == v) {
                    (true, p)
                } else {
                    (
                        false,
                        probe
                            .vars
                            .iter()
                            .position(|w| w == v)
                            .expect("var in probe"),
                    )
                }
            })
            .collect();

        with_scratch(|s| {
            let index = build.join_index(&build_key_pos, exact, s);
            let Scratch {
                emit, sort, key, ..
            } = s;
            emit.codes.clear();
            emit.weights.clear();
            key.clear();
            key.resize(shared.len(), 0);
            for pi in 0..probe.len() {
                let prow = probe.row_codes(pi);
                for (slot, &p) in key.iter_mut().zip(&probe_key_pos) {
                    *slot = prow[p];
                }
                let Some(&(start, len)) = index.buckets.get(&key_id(key, exact)) else {
                    continue;
                };
                let pw = probe.weights[pi];
                for &bi in &index.rows[start as usize..(start + len) as usize] {
                    let bi = bi as usize;
                    let brow = build.row_codes(bi);
                    if !exact
                        && !build_key_pos
                            .iter()
                            .zip(key.iter())
                            .all(|(&p, &k)| brow[p] == k)
                    {
                        continue;
                    }
                    for &(from_build, p) in &out_pos {
                        emit.codes.push(if from_build { brow[p] } else { prow[p] });
                    }
                    emit.weights.push(semiring.mul(build.weights[bi], pw));
                }
            }
            let (codes, weights) = aggregate(out_arity, semiring, &emit.codes, &emit.weights, sort);
            Factor::from_parts(out_vars, domain, codes, weights)
        })
    }

    /// The retained join index for the given build key columns, built on
    /// first use and shared across all subsequent joins (and threads)
    /// probing this factor on the same key set.
    fn join_index(&self, key_pos: &[usize], exact: bool, s: &mut Scratch) -> Arc<JoinIndex> {
        let cache_key: Box<[u32]> = key_pos.iter().map(|&p| p as u32).collect();
        {
            let guard = self.joins.lock().expect("join index lock poisoned");
            if let Some((_, idx)) = guard.iter().find(|(k, _)| *k == cache_key) {
                return Arc::clone(idx);
            }
        }
        // Build outside the lock (mirrors the family FactorStore: two
        // threads racing on one key set may duplicate work, but never
        // serialize unrelated probes behind an index build).
        let built = Arc::new(self.build_join_index(key_pos, exact, s));
        let mut guard = self.joins.lock().expect("join index lock poisoned");
        if let Some((_, idx)) = guard.iter().find(|(k, _)| *k == cache_key) {
            return Arc::clone(idx);
        }
        guard.push((cache_key, Arc::clone(&built)));
        built
    }

    fn build_join_index(&self, key_pos: &[usize], exact: bool, s: &mut Scratch) -> JoinIndex {
        let n = self.len();
        let Scratch { key, hashes, .. } = s;
        hashes.clear();
        hashes.reserve(n);
        key.clear();
        key.resize(key_pos.len(), 0);
        for i in 0..n {
            let row = self.row_codes(i);
            for (slot, &p) in key.iter_mut().zip(key_pos) {
                *slot = row[p];
            }
            hashes.push((key_id(key, exact), i as u32));
        }
        hashes.sort_unstable();
        let mut rows = Vec::with_capacity(n);
        let mut buckets: FxHashMap<u64, (u32, u32)> =
            FxHashMap::with_capacity_and_hasher(n, Default::default());
        let mut i = 0;
        while i < n {
            let kid = hashes[i].0;
            let start = i;
            while i < n && hashes[i].0 == kid {
                rows.push(hashes[i].1);
                i += 1;
            }
            buckets.insert(kid, (start as u32, (i - start) as u32));
        }
        JoinIndex {
            rows: rows.into_boxed_slice(),
            buckets,
        }
    }

    /// Substitutes variables per the union-find representative table
    /// `rep[var_id] = class representative var id`: columns falling into
    /// the same class are checked for equality (rows violating it drop
    /// out) and collapsed into one column named `VarId(rep)`.
    ///
    /// Used by the inclusion–exclusion evaluation of inequality
    /// predicates, where each term imposes a set of variable equalities.
    pub fn merge_columns(&self, rep: &[usize], semiring: Semiring) -> Factor {
        let mut out_vars: Vec<VarId> = Vec::with_capacity(self.vars.len());
        // For each column: the output position it feeds, or a column it
        // must agree with.
        let mut proj: Vec<usize> = Vec::with_capacity(self.vars.len());
        for v in &self.vars {
            let r = VarId(rep[v.0]);
            match out_vars.iter().position(|w| *w == r) {
                Some(p) => proj.push(p),
                None => {
                    out_vars.push(r);
                    proj.push(out_vars.len() - 1);
                }
            }
        }
        let width = out_vars.len();
        if width == self.vars.len() && out_vars.iter().zip(&self.vars).all(|(a, b)| a == b) {
            return self.clone();
        }
        with_scratch(|s| {
            let Scratch { emit, sort, .. } = s;
            emit.codes.clear();
            emit.weights.clear();
            let mut buf = vec![None::<u32>; width];
            'rows: for i in 0..self.len() {
                let row = self.row_codes(i);
                buf.iter_mut().for_each(|b| *b = None);
                for (&c, &p) in row.iter().zip(&proj) {
                    match buf[p] {
                        None => buf[p] = Some(c),
                        Some(prev) if prev != c => continue 'rows,
                        Some(_) => {}
                    }
                }
                for b in &buf {
                    emit.codes.push(b.expect("all filled"));
                }
                emit.weights.push(self.weights[i]);
            }
            let (codes, weights) = aggregate(width, semiring, &emit.codes, &emit.weights, sort);
            Factor::from_parts(out_vars, Arc::clone(&self.domain), codes, weights)
        })
    }

    /// Eliminates (aggregates away) the given variables, combining
    /// annotations of collapsing rows with the semiring's `+`.
    pub fn eliminate(&self, drop: &[VarId], semiring: Semiring) -> Factor {
        if drop.iter().all(|v| !self.mentions(*v)) {
            return self.clone();
        }
        let keep_pos: Vec<usize> = (0..self.vars.len())
            .filter(|&i| !drop.contains(&self.vars[i]))
            .collect();
        let out_vars: Vec<VarId> = keep_pos.iter().map(|&i| self.vars[i]).collect();
        with_scratch(|s| {
            let Scratch { emit, sort, .. } = s;
            emit.codes.clear();
            emit.weights.clear();
            for i in 0..self.len() {
                let row = self.row_codes(i);
                for &p in &keep_pos {
                    emit.codes.push(row[p]);
                }
                emit.weights.push(self.weights[i]);
            }
            let (codes, weights) =
                aggregate(keep_pos.len(), semiring, &emit.codes, &emit.weights, sort);
            Factor::from_parts(out_vars, Arc::clone(&self.domain), codes, weights)
        })
    }

    /// Keeps only rows satisfying all predicates. Every predicate's
    /// variables must be columns of this factor. Predicates compare
    /// *values*, so cells decode through the domain here (the boundary
    /// between the code-compressed kernel and the ordered value space).
    ///
    /// # Panics
    /// Panics if a predicate mentions a variable not in this factor.
    pub fn filter(&mut self, preds: &[Predicate]) {
        if preds.is_empty() {
            return;
        }
        // Resolve predicate variables to column positions once.
        let resolved: Vec<(Predicate, Vec<usize>)> = preds
            .iter()
            .map(|p| {
                let pos = p
                    .variables()
                    .iter()
                    .map(|v| {
                        self.vars
                            .iter()
                            .position(|w| w == v)
                            .expect("predicate variable not in factor during filter")
                    })
                    .collect();
                (*p, pos)
            })
            .collect();
        let a = self.arity();
        let domain = &self.domain;
        let keep = |row: &[u32]| {
            resolved.iter().all(|(p, pos)| {
                p.eval(|v| {
                    let vi = p.variables().iter().position(|w| *w == v).expect("own var");
                    domain.value(row[pos[vi]])
                })
            })
        };
        let mut codes = Vec::with_capacity(self.codes.len());
        let mut weights = Vec::with_capacity(self.weights.len());
        for i in 0..self.len() {
            let row = &self.codes[i * a..(i + 1) * a];
            if keep(row) {
                codes.extend_from_slice(row);
                weights.push(self.weights[i]);
            }
        }
        // Rows were already distinct, so filtering needs no re-aggregation;
        // all caches are invalidated by the mutation.
        self.codes = codes;
        self.weights = weights;
        self.decoded = OnceLock::new();
        self.joins = Mutex::new(Vec::new());
        self.order = OnceLock::new();
    }

    /// Clamps all annotations to 1 (converts a counting factor to Boolean).
    pub fn to_boolean(&self) -> Factor {
        let mut out = self.clone();
        for w in out.weights.iter_mut() {
            *w = 1;
        }
        out
    }

    /// Row indices sorted by descending weight (used by the final-stage
    /// branch-and-bound maximizer). Computed once per factor and cached;
    /// factors shared through the family memo store amortize the sort
    /// across every branch-and-bound that visits them.
    pub(crate) fn rows_by_weight_desc(&self) -> &[u32] {
        self.order.get_or_init(|| {
            let mut idx: Vec<u32> = (0..self.len() as u32).collect();
            idx.sort_by_key(|&i| std::cmp::Reverse(self.weights[i as usize]));
            idx.into_boxed_slice()
        })
    }

    /// Re-wraps the factor against `domain` without touching its rows.
    /// Sound only when `domain` *extends* this factor's domain (every code
    /// the rows mention decodes to the same value) — the delta-maintenance
    /// path uses it when the shared patch domain grows.
    pub(crate) fn with_domain(&self, domain: Arc<Domain>) -> Factor {
        debug_assert!(
            domain.values().len() >= self.domain.values().len()
                && domain.values()[..self.domain.values().len()] == *self.domain.values(),
            "with_domain requires a prefix-extending domain"
        );
        Factor::from_parts(
            self.vars.clone(),
            domain,
            self.codes.clone(),
            self.weights.clone(),
        )
    }

    /// Applies a signed row delta copy-on-write: a two-pointer merge of the
    /// stored rows with `delta`, both in code-lexicographic order (every
    /// aggregated factor is stored sorted — the packed `u64`/`u128` sort
    /// keys and the wide-row comparator all order rows lexicographically).
    /// `delta` must be strictly sorted by row codes with no zero entries.
    ///
    /// Rows whose patched weight reaches zero drop out; a weight that
    /// would go *negative* (or overflow `i128`) means the delta is
    /// inconsistent with this factor, and the caller must fall back to
    /// recomputation — `None` is returned. The result is wrapped against
    /// `domain` (the possibly-grown shared patch domain).
    pub(crate) fn patch_signed(
        &self,
        delta: &[(Box<[u32]>, i128)],
        domain: Arc<Domain>,
    ) -> Option<Factor> {
        let arity = self.arity();
        debug_assert!(delta.windows(2).all(|w| w[0].0 < w[1].0), "delta sorted");
        let n = self.len();
        let mut codes = Vec::with_capacity(self.codes.len() + delta.len() * arity);
        let mut weights = Vec::with_capacity(n + delta.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < n || j < delta.len() {
            let ord = if i == n {
                std::cmp::Ordering::Greater
            } else if j == delta.len() {
                std::cmp::Ordering::Less
            } else {
                self.row_codes(i).cmp(&delta[j].0)
            };
            match ord {
                std::cmp::Ordering::Less => {
                    codes.extend_from_slice(self.row_codes(i));
                    weights.push(self.weights[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    let (row, d) = &delta[j];
                    if *d < 0 {
                        return None; // removing a row that is not there
                    }
                    if *d > 0 {
                        codes.extend_from_slice(row);
                        weights.push(*d as u128);
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let w = i128::try_from(self.weights[i]).ok()?;
                    let next = w.checked_add(delta[j].1)?;
                    if next < 0 {
                        return None;
                    }
                    if next > 0 {
                        codes.extend_from_slice(self.row_codes(i));
                        weights.push(next as u128);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Some(Factor::from_parts(
            self.vars.clone(),
            domain,
            codes,
            weights,
        ))
    }

    /// Number of distinct key sets with a retained join index (testing).
    #[cfg(test)]
    fn retained_join_indexes(&self) -> usize {
        self.joins.lock().expect("join index lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcq_query::{CmpOp, Term};

    fn v(i: i64) -> Value {
        Value(i)
    }

    fn fx(vars: &[usize], rows: &[(&[i64], u128)]) -> Factor {
        Factor::from_rows(
            vars.iter().map(|&i| VarId(i)).collect(),
            rows.iter()
                .map(|(r, w)| (r.iter().map(|&x| v(x)).collect(), *w)),
            Semiring::Counting,
        )
    }

    fn weight_at(f: &Factor, row: &[Value]) -> u128 {
        f.iter()
            .find(|(r, _)| *r == row)
            .map(|(_, w)| w)
            .unwrap_or(0)
    }

    #[test]
    fn unit_and_scalar() {
        let u = Factor::unit();
        assert_eq!(u.scalar(), 1);
        assert_eq!(u.len(), 1);
        assert_eq!(Factor::empty(vec![]).scalar(), 0);
    }

    #[test]
    fn from_rows_accumulates() {
        let f = fx(&[0], &[(&[1], 2), (&[1], 3), (&[2], 1)]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.total(), 6);
        assert_eq!(f.max_annotation(), 5);
    }

    #[test]
    fn boolean_from_rows_clamps() {
        let f = Factor::from_rows(
            vec![VarId(0)],
            [(vec![v(1)], 5), (vec![v(1)], 7)],
            Semiring::Boolean,
        );
        assert_eq!(f.total(), 1);
    }

    #[test]
    fn join_on_shared_var() {
        // R(x,y) = {(1,2),(1,3),(2,3)}, S(y,z) = {(2,9),(3,9)}
        let r = fx(&[0, 1], &[(&[1, 2], 1), (&[1, 3], 1), (&[2, 3], 1)]);
        let s = fx(&[1, 2], &[(&[2, 9], 1), (&[3, 9], 1)]);
        let j = r.join(&s, Semiring::Counting);
        assert_eq!(j.vars(), &[VarId(0), VarId(1), VarId(2)]);
        assert_eq!(j.total(), 3);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn join_multiplies_annotations() {
        let a = fx(&[0], &[(&[1], 2)]);
        let b = fx(&[0], &[(&[1], 3)]);
        let j = a.join(&b, Semiring::Counting);
        assert_eq!(weight_at(&j, &[v(1)]), 6);
    }

    #[test]
    fn cross_product_when_disjoint() {
        let a = fx(&[0], &[(&[1], 1), (&[2], 1)]);
        let b = fx(&[1], &[(&[7], 1), (&[8], 1), (&[9], 1)]);
        let j = a.join(&b, Semiring::Counting);
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn join_column_order_is_self_then_other() {
        let a = fx(&[2], &[(&[5], 1)]);
        let b = fx(&[0, 2], &[(&[1, 5], 1)]);
        let j = a.join(&b, Semiring::Counting);
        assert_eq!(j.vars(), &[VarId(2), VarId(0)]);
    }

    #[test]
    fn join_within_one_domain_and_across_domains_agree() {
        // Derivatives of one factor share its domain (pointer-equal fast
        // path); independently built factors with overlapping value sets
        // take the merge path. Both must produce the same join.
        let base = fx(
            &[0, 1, 2],
            &[(&[1, 2, 7], 1), (&[1, 3, 8], 2), (&[2, 3, 7], 1)],
        );
        let a = base.eliminate(&[VarId(2)], Semiring::Counting);
        let b = base.eliminate(&[VarId(0)], Semiring::Counting);
        assert!(Arc::ptr_eq(a.domain(), b.domain()));
        let shared = a.join(&b, Semiring::Counting);
        let a2 = fx(&[0, 1], &[(&[1, 2], 1), (&[1, 3], 2), (&[2, 3], 1)]);
        let b2 = fx(&[1, 2], &[(&[2, 7], 1), (&[3, 8], 2), (&[3, 7], 1)]);
        assert!(!Arc::ptr_eq(a2.domain(), b2.domain()));
        let merged = a2.join(&b2, Semiring::Counting);
        assert_eq!(shared.len(), merged.len());
        for (row, w) in shared.iter() {
            assert_eq!(weight_at(&merged, row), w);
        }
    }

    #[test]
    fn eliminate_sums() {
        let f = fx(&[0, 1], &[(&[1, 10], 2), (&[1, 20], 3), (&[2, 30], 4)]);
        let g = f.eliminate(&[VarId(1)], Semiring::Counting);
        assert_eq!(g.vars(), &[VarId(0)]);
        assert_eq!(g.max_annotation(), 5);
        assert_eq!(g.total(), 9);
    }

    #[test]
    fn eliminate_boolean_dedups() {
        let f = fx(&[0, 1], &[(&[1, 10], 1), (&[1, 20], 1)]);
        let g = f.to_boolean().eliminate(&[VarId(1)], Semiring::Boolean);
        assert_eq!(g.total(), 1);
    }

    #[test]
    fn eliminate_boolean_clamps_counting_weights() {
        // A Counting-weighted factor eliminated in the Boolean semiring
        // clamps every contribution (the Section 6 projection path).
        let f = fx(&[0, 1], &[(&[1, 10], 5), (&[2, 20], 3)]);
        let g = f.eliminate(&[VarId(1)], Semiring::Boolean);
        assert_eq!(weight_at(&g, &[v(1)]), 1);
        assert_eq!(weight_at(&g, &[v(2)]), 1);
    }

    #[test]
    fn eliminate_everything_gives_scalar() {
        let f = fx(&[0, 1], &[(&[1, 10], 2), (&[2, 20], 3)]);
        let g = f.eliminate(&[VarId(0), VarId(1)], Semiring::Counting);
        assert_eq!(g.scalar(), 5);
    }

    #[test]
    fn eliminate_noop_when_vars_absent() {
        let f = fx(&[0], &[(&[1], 1)]);
        let g = f.eliminate(&[VarId(5)], Semiring::Counting);
        assert_eq!(g.len(), 1);
        assert_eq!(g.vars(), &[VarId(0)]);
    }

    #[test]
    fn wide_aggregation_paths_dedup() {
        // Exercise every packing tier of the sort-based aggregation:
        // arity 3–4 (u128 keys) and arity ≥ 5 (index permutation).
        let rows: Vec<(Vec<Value>, u128)> = (0..40i64)
            .map(|i| (vec![v(i % 2), v(i % 3), v(i % 2), v(0), v(i % 3)], 1))
            .collect();
        let f = Factor::from_rows(
            (0..5).map(VarId).collect(),
            rows.clone(),
            Semiring::Counting,
        );
        assert_eq!(f.total(), 40);
        assert_eq!(f.len(), 6); // (i % 2, i % 3) combinations
        let g = f.eliminate(&[VarId(3)], Semiring::Counting); // arity-4 output
        assert_eq!(g.total(), 40);
        assert_eq!(g.len(), 6);
        let h = g.eliminate(&[VarId(2), VarId(4)], Semiring::Counting);
        assert_eq!(h.total(), 40);
        assert_eq!(h.len(), 6);
    }

    #[test]
    fn filter_applies_predicates() {
        let mut f = fx(&[0, 1], &[(&[1, 1], 1), (&[1, 2], 1), (&[2, 1], 1)]);
        f.filter(&[Predicate::neq(VarId(0), VarId(1))]);
        assert_eq!(f.len(), 2);
        let mut g = fx(&[0], &[(&[1], 1), (&[5], 1)]);
        g.filter(&[Predicate::new(
            Term::Var(VarId(0)),
            CmpOp::Lt,
            Term::Const(v(3)),
        )]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn filter_compares_values_not_codes() {
        // Codes are assigned in interning order (here 5 → 0, 1 → 1), so a
        // code-space comparison would invert this predicate.
        let mut f = fx(&[0], &[(&[5], 1), (&[1], 1)]);
        f.filter(&[Predicate::new(
            Term::Var(VarId(0)),
            CmpOp::Lt,
            Term::Const(v(3)),
        )]);
        assert_eq!(f.len(), 1);
        assert_eq!(weight_at(&f, &[v(1)]), 1);
    }

    #[test]
    #[should_panic(expected = "predicate variable not in factor")]
    fn filter_panics_on_foreign_var() {
        let mut f = fx(&[0], &[(&[1], 1)]);
        f.filter(&[Predicate::neq(VarId(0), VarId(9))]);
    }

    #[test]
    fn rows_by_weight_desc_sorted() {
        let f = fx(&[0], &[(&[1], 2), (&[2], 9), (&[3], 5)]);
        let order = f.rows_by_weight_desc();
        let weights: Vec<u128> = order.iter().map(|&i| f.weight(i as usize)).collect();
        assert_eq!(weights, vec![9, 5, 2]);
    }

    #[test]
    fn join_eliminate_matches_join_then_eliminate() {
        let r = fx(&[0, 1], &[(&[1, 2], 1), (&[1, 3], 2), (&[2, 3], 1)]);
        let s = fx(&[1, 2], &[(&[2, 9], 3), (&[3, 9], 1), (&[3, 8], 1)]);
        for drop in [
            vec![VarId(1)],
            vec![VarId(0), VarId(1)],
            vec![],
            vec![VarId(2)],
        ] {
            let fused = r.join_eliminate(&s, &drop, Semiring::Counting);
            let staged = r
                .join(&s, Semiring::Counting)
                .eliminate(&drop, Semiring::Counting);
            assert_eq!(fused.len(), staged.len(), "drop {drop:?}");
            for (row, w) in staged.iter() {
                assert_eq!(weight_at(&fused, row), w, "drop {drop:?}");
            }
        }
    }

    #[test]
    fn join_index_is_retained_per_key_set() {
        let base = fx(
            &[0, 1, 2],
            &[(&[1, 2, 7], 1), (&[1, 3, 8], 2), (&[2, 3, 7], 1)],
        );
        let big = base.eliminate(&[], Semiring::Counting); // clone, shared domain
        let small = base.eliminate(&[VarId(2)], Semiring::Counting);
        assert_eq!(small.retained_join_indexes(), 0);
        // `small` is the build side (fewer or equal rows): its index on
        // {x0, x1} materializes once and is reused by the second join.
        let j1 = small.join(&big, Semiring::Counting);
        assert_eq!(small.retained_join_indexes(), 1);
        let j2 = small.join(&big, Semiring::Counting);
        assert_eq!(small.retained_join_indexes(), 1);
        assert_eq!(j1.len(), j2.len());
        // A different key set gets its own retained index.
        let other = base.eliminate(&[VarId(1)], Semiring::Counting);
        let _ = small.join(&other, Semiring::Counting);
        assert_eq!(small.retained_join_indexes(), 2);
    }

    #[test]
    fn merge_columns_identity_and_collapse() {
        let f = fx(&[0, 1], &[(&[1, 1], 2), (&[1, 2], 1), (&[3, 3], 1)]);
        let n = 4;
        let identity: Vec<usize> = (0..n).collect();
        let same = f.merge_columns(&identity, Semiring::Counting);
        assert_eq!(same.len(), 3);
        // Merge var 1 into var 0: keeps only diagonal rows.
        let mut rep = identity.clone();
        rep[1] = 0;
        let merged = f.merge_columns(&rep, Semiring::Counting);
        assert_eq!(merged.vars(), &[VarId(0)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(weight_at(&merged, &[v(1)]), 2);
        assert_eq!(weight_at(&merged, &[v(3)]), 1);
    }

    #[test]
    fn merge_columns_renames_to_representative() {
        let f = fx(&[2], &[(&[5], 1)]);
        let mut rep: Vec<usize> = (0..4).collect();
        rep[2] = 0; // class {0, 2} represented by 0
        let merged = f.merge_columns(&rep, Semiring::Counting);
        assert_eq!(merged.vars(), &[VarId(0)]);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn mentions_is_constant_time_through_id_127() {
        // The u128 bitset covers ids 0–127 (boundary cases 63, 64, 127);
        // ids ≥ 128 fall back to the linear scan and still answer right.
        let vars = vec![VarId(63), VarId(64), VarId(127), VarId(130)];
        let f = Factor::from_rows(
            vars.clone(),
            [(vec![v(1), v(2), v(3), v(4)], 1)],
            Semiring::Counting,
        );
        for v in &vars {
            assert!(f.mentions(*v), "var {v:?}");
        }
        assert!(!f.mentions(VarId(62)));
        assert!(!f.mentions(VarId(65)));
        assert!(!f.mentions(VarId(126)));
        assert!(!f.mentions(VarId(128)));
        assert_eq!(vars_mask(&vars), (1 << 63) | (1 << 64) | (1 << 127));
    }

    #[test]
    fn high_var_ids_keep_kernel_semantics() {
        // Join + eliminate across the former u64-mask boundary: with the
        // old 64-bit mask, `mentions(VarId(64))` silently degraded and the
        // shared variable below would still be found by the fallback scan,
        // but `vars_mask`-based predicate routing lost it. Pin the u128
        // behavior end to end.
        let a = Factor::from_rows(
            vec![VarId(63), VarId(64)],
            [(vec![v(1), v(2)], 1), (vec![v(1), v(3)], 2)],
            Semiring::Counting,
        );
        let b = Factor::from_rows(
            vec![VarId(64), VarId(127)],
            [(vec![v(2), v(9)], 3), (vec![v(3), v(9)], 1)],
            Semiring::Counting,
        );
        let j = a.join_eliminate(&b, &[VarId(64)], Semiring::Counting);
        assert_eq!(j.vars(), &[VarId(63), VarId(127)]);
        assert_eq!(weight_at(&j, &[v(1), v(9)]), 5);
        let g = j.eliminate(&[VarId(127)], Semiring::Counting);
        assert_eq!(g.vars(), &[VarId(63)]);
        assert_eq!(g.total(), 5);
    }

    #[test]
    fn large_factor_roundtrip() {
        // Exercise the flat storage + sort-based aggregation a bit harder.
        let rows: Vec<(Vec<Value>, u128)> = (0..10_000i64)
            .map(|i| (vec![v(i % 500), v(i / 500)], 1))
            .collect();
        let f = Factor::from_rows(vec![VarId(0), VarId(1)], rows, Semiring::Counting);
        assert_eq!(f.len(), 10_000);
        assert_eq!(f.total(), 10_000);
        let g = f.eliminate(&[VarId(1)], Semiring::Counting);
        assert_eq!(g.len(), 500);
        assert_eq!(g.max_annotation(), 20);
    }
}
