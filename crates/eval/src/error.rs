//! Evaluation errors.

use std::fmt;

/// Errors raised while binding a query to a database or evaluating it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// An atom references a relation absent from the database.
    UnknownRelation {
        /// Relation name.
        relation: String,
    },
    /// An atom's arity differs from the stored relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity in the query atom.
        atom_arity: usize,
        /// Arity of the stored relation.
        relation_arity: usize,
    },
    /// A comparison predicate is not contained in the residual query being
    /// evaluated. Unlike inequalities (Corollary 5.1), comparisons cannot
    /// simply be dropped; materialize them first
    /// (see [`crate::active_domain::materialize_comparisons`]).
    UncontainedComparison {
        /// Rendered predicate.
        predicate: String,
    },
    /// The active-domain materialization would exceed the configured size
    /// budget.
    DomainTooLarge {
        /// Number of active-domain values.
        size: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The general-predicate algorithm's exponential search would exceed
    /// the configured instance-size budget.
    InstanceTooLarge {
        /// Number of residual rows in the largest boundary group.
        size: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A cooperative [`CancelToken`](crate::CancelToken) tripped at an
    /// evaluation checkpoint — typically a per-request deadline. The
    /// evaluation produced no result and may simply be retried.
    Cancelled,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation { relation } => {
                write!(f, "relation `{relation}` not found in database")
            }
            EvalError::ArityMismatch {
                relation,
                atom_arity,
                relation_arity,
            } => write!(
                f,
                "atom over `{relation}` has arity {atom_arity}, stored relation has arity {relation_arity}"
            ),
            EvalError::UncontainedComparison { predicate } => write!(
                f,
                "comparison predicate `{predicate}` spans the residual boundary; materialize comparisons first (Section 5.2)"
            ),
            EvalError::DomainTooLarge { size, limit } => write!(
                f,
                "augmented active domain has {size} values, exceeding the limit {limit}"
            ),
            EvalError::InstanceTooLarge { size, limit } => write!(
                f,
                "general-predicate search over {size} rows exceeds the limit {limit}"
            ),
            EvalError::Cancelled => {
                write!(f, "evaluation cancelled: deadline exceeded")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        let e = EvalError::ArityMismatch {
            relation: "R".into(),
            atom_arity: 2,
            relation_arity: 3,
        };
        let s = e.to_string();
        assert!(s.contains('R') && s.contains('2') && s.contains('3'));
    }
}
