//! The augmented active domain `Z+(q, I)` and comparison-predicate
//! materialization (Section 5.2 of the paper).
//!
//! Comparison predicates that span a residual boundary cannot be dropped
//! the way inequalities can (Example 5 in the paper shows `T_Ē` may be
//! attained *between* two active-domain values). Lemma 5.2 shows it
//! suffices to evaluate over the augmented domain `Z+(q, I)`: the active
//! domain plus `2κ` fresh values inside every gap (and beyond both ends),
//! where `κ` is the number of predicates. [`materialize_comparisons`] then
//! turns each comparison into an ordinary **public** relation over
//! `Z+(q, I)`, after which the whole Section 3 machinery applies verbatim
//! (the CQP-as-CQ view of Eq. (35)).

use crate::error::EvalError;
use dpcq_query::{ConjunctiveQuery, CqBuilder, Term};
use dpcq_relation::{Database, Value};

/// Collects `Z*(q, I)`: every integer appearing in a relation referenced
/// by `q` or as a constant in `q`'s atoms/predicates.
///
/// (The paper restricts to predicate attributes; using the superset keeps
/// the code simple and only enlarges the materialized relations.)
pub fn active_domain(query: &ConjunctiveQuery, db: &Database) -> Vec<Value> {
    let mut vals: Vec<Value> = Vec::new();
    for atom in query.atoms() {
        if let Some(rel) = db.relation(&atom.relation) {
            vals.extend(rel.iter().flatten().copied());
        }
        for t in &atom.terms {
            if let Term::Const(c) = t {
                vals.push(*c);
            }
        }
    }
    for p in query.predicates() {
        for t in [p.lhs, p.rhs] {
            if let Term::Const(c) = t {
                vals.push(c);
            }
        }
    }
    vals.sort_unstable();
    vals.dedup();
    vals
}

/// Builds the augmented domain `Z+(q, I)`: the active domain plus up to
/// `2κ` fresh integers strictly inside each gap between consecutive active
/// values, plus `2κ` values below the minimum and above the maximum
/// (realizing the paper's `±∞` sentinels with finite room to spare).
pub fn augmented_active_domain(query: &ConjunctiveQuery, db: &Database) -> Vec<Value> {
    let base = active_domain(query, db);
    let kappa = query.predicates().len().max(1);
    let pad = 2 * kappa as i64;
    let mut out: Vec<Value> = Vec::with_capacity(base.len() * (1 + 2 * kappa));
    if base.is_empty() {
        // Degenerate instance: any 2κ+1 values will do.
        return (0..=pad).map(Value).collect();
    }
    let lo = base[0].0;
    for d in (1..=pad).rev() {
        out.push(Value(lo.saturating_sub(d)));
    }
    for w in base.windows(2) {
        out.push(w[0]);
        let gap = w[1].0 - w[0].0;
        for d in 1..=(gap - 1).min(pad) {
            out.push(Value(w[0].0 + d));
        }
    }
    let hi = *base.last().expect("non-empty");
    out.push(hi);
    for d in 1..=pad {
        out.push(Value(hi.0.saturating_add(d)));
    }
    out.dedup();
    out
}

/// Rewrites `q` into an equivalent CQ in which every *comparison*
/// predicate is an ordinary public relation over `Z+(q, I)` (the Eq. (35)
/// view), returning the rewritten query, the database extended with the
/// materialized relations, and the list of added relation names (all
/// public — keep them out of the privacy policy).
///
/// Inequality (`≠`) predicates are kept symbolic: Corollary 5.1 handles
/// them exactly without materialization. Comparisons against constants are
/// materialized as unary relations.
///
/// `domain_limit` bounds `|Z+(q, I)|`; var-var comparisons materialize
/// `O(|Z+|²)` tuples.
pub fn materialize_comparisons(
    query: &ConjunctiveQuery,
    db: &Database,
    domain_limit: usize,
) -> Result<(ConjunctiveQuery, Database, Vec<String>), EvalError> {
    let needs_materialization = query.predicates().iter().any(|p| p.is_comparison());
    if !needs_materialization {
        return Ok((query.clone(), db.clone(), Vec::new()));
    }
    let domain = augmented_active_domain(query, db);
    if domain.len() > domain_limit {
        return Err(EvalError::DomainTooLarge {
            size: domain.len(),
            limit: domain_limit,
        });
    }

    let mut b = CqBuilder::new();
    // Re-intern variables in id order so VarIds are preserved.
    for i in 0..query.num_vars() {
        b.var(query.var_name(dpcq_query::VarId(i)));
    }
    for atom in query.atoms() {
        b.atom_terms(&atom.relation, atom.terms.iter().copied());
    }

    let mut new_db = db.clone();
    let mut added = Vec::new();
    for (j, p) in query.predicates().iter().enumerate() {
        if !p.is_comparison() {
            b.pred(*p);
            continue;
        }
        let name = format!("__cmp{j}");
        match (p.lhs, p.rhs) {
            (Term::Var(x), Term::Var(y)) if x != y => {
                let mut rel = dpcq_relation::Relation::new(2);
                for &a in &domain {
                    for &c in &domain {
                        if p.op.apply(a, c) {
                            rel.insert(&[a, c]);
                        }
                    }
                }
                new_db.insert_relation(&name, rel);
                b.atom(&name, [x, y]);
                added.push(name);
            }
            (Term::Var(x), Term::Var(_)) => {
                // x op x: constant truth over any row; keep symbolic (it is
                // contained in every residual mentioning x).
                let _ = x;
                b.pred(*p);
            }
            (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
                let flipped = matches!(p.lhs, Term::Const(_));
                let op = if flipped { p.op.flip() } else { p.op };
                let mut rel = dpcq_relation::Relation::new(1);
                for &a in &domain {
                    if op.apply(a, c) {
                        rel.insert(&[a]);
                    }
                }
                new_db.insert_relation(&name, rel);
                b.atom(&name, [x]);
                added.push(name);
            }
            (Term::Const(a), Term::Const(c)) => {
                // Evaluates to a constant; keep symbolic (contained
                // everywhere, applied as a trivial filter).
                let _ = (a, c);
                b.pred(*p);
            }
        }
    }
    if let Some(proj) = query.projection() {
        b.project(proj.iter().copied());
    }
    let q2 = b.build().expect("rewritten query is well-formed");
    Ok((q2, new_db, added))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive, Evaluator};
    use dpcq_query::parse_query;

    fn db_small() -> Database {
        let mut db = Database::new();
        for e in [[1, 5], [2, 5], [2, 9], [7, 9]] {
            db.insert_tuple("R", &[Value(e[0]), Value(e[1])]);
        }
        db
    }

    #[test]
    fn active_domain_collects_relation_and_query_constants() {
        let q = parse_query("Q(*) :- R(x, y), x < 42").unwrap();
        let d = db_small();
        let ad = active_domain(&q, &d);
        assert!(ad.contains(&Value(1)));
        assert!(ad.contains(&Value(9)));
        assert!(ad.contains(&Value(42)));
        assert!(ad.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn augmented_domain_fills_gaps_and_pads_ends() {
        let q = parse_query("Q(*) :- R(x, y), x < y").unwrap();
        let d = db_small();
        let zp = augmented_active_domain(&q, &d);
        // κ = 1 ⇒ pad = 2. Active = {1,2,5,7,9}.
        assert!(zp.contains(&Value(-1)) && zp.contains(&Value(0))); // below
        assert!(zp.contains(&Value(3)) && zp.contains(&Value(4))); // gap 2..5
        assert!(zp.contains(&Value(6))); // gap 5..7
        assert!(zp.contains(&Value(10)) && zp.contains(&Value(11))); // above
        assert!(zp.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn augmented_domain_of_empty_instance() {
        let q = parse_query("Q(*) :- R(x, y), x < y").unwrap();
        let mut d = Database::new();
        d.create_relation("R", 2);
        let zp = augmented_active_domain(&q, &d);
        assert!(!zp.is_empty());
    }

    #[test]
    fn materialization_preserves_count() {
        // x < y over R: pairs (1,5),(2,5),(2,9),(7,9) all satisfy.
        let q = parse_query("Q(*) :- R(x, y), x < y").unwrap();
        let d = db_small();
        let (q2, d2, added) = materialize_comparisons(&q, &d, 1024).unwrap();
        assert_eq!(added.len(), 1);
        assert!(q2.predicates().is_empty());
        let base = Evaluator::new(&q, &d).unwrap().count().unwrap();
        let mat = Evaluator::new(&q2, &d2).unwrap().count().unwrap();
        assert_eq!(base, mat);
        assert_eq!(base, 4);
    }

    #[test]
    fn materialization_enables_boundary_spanning_te() {
        // q = R(x,y) ⋈ R(y,z), x < z spans any single-atom residual.
        let mut d = Database::new();
        for e in [[1, 2], [2, 3], [3, 1], [2, 9]] {
            d.insert_tuple("R", &[Value(e[0]), Value(e[1])]);
        }
        let q = parse_query("Q(*) :- R(x, y), R(y, z), x < z").unwrap();
        let ev = Evaluator::new(&q, &d).unwrap();
        assert!(ev.t_e(&[0]).is_err()); // refused before materialization
        let (q2, d2, _) = materialize_comparisons(&q, &d, 1024).unwrap();
        let ev2 = Evaluator::new(&q2, &d2).unwrap();
        // Counts agree.
        assert_eq!(ev.count().unwrap(), ev2.count().unwrap());
        // And every residual of the rewritten query is computable, matching
        // the naive evaluator.
        let n = q2.num_atoms();
        for subset in dpcq_query::analysis::subsets(&(0..n).collect::<Vec<_>>()) {
            assert_eq!(
                ev2.t_e(&subset).unwrap(),
                naive::t_e(&q2, &d2, &subset).unwrap(),
                "E={subset:?}"
            );
        }
    }

    #[test]
    fn constant_comparisons_materialize_unary() {
        let q = parse_query("Q(*) :- R(x, y), x <= 2, 9 <= y").unwrap();
        let d = db_small();
        let (q2, d2, added) = materialize_comparisons(&q, &d, 1024).unwrap();
        assert_eq!(added.len(), 2);
        let got = Evaluator::new(&q2, &d2).unwrap().count().unwrap();
        // Rows with x ≤ 2 and y ≥ 9: (2,9).
        assert_eq!(got, 1);
    }

    #[test]
    fn inequalities_stay_symbolic() {
        let q = parse_query("Q(*) :- R(x, y), x != y, x < y").unwrap();
        let d = db_small();
        let (q2, _, added) = materialize_comparisons(&q, &d, 1024).unwrap();
        assert_eq!(added.len(), 1);
        assert_eq!(q2.predicates().len(), 1);
        assert!(q2.predicates()[0].is_inequality());
    }

    #[test]
    fn domain_limit_enforced() {
        let q = parse_query("Q(*) :- R(x, y), x < y").unwrap();
        let d = db_small();
        assert!(matches!(
            materialize_comparisons(&q, &d, 3).unwrap_err(),
            EvalError::DomainTooLarge { .. }
        ));
    }

    #[test]
    fn no_comparisons_is_identity() {
        let q = parse_query("Q(*) :- R(x, y), x != y").unwrap();
        let d = db_small();
        let (q2, _, added) = materialize_comparisons(&q, &d, 8).unwrap();
        assert!(added.is_empty());
        assert_eq!(q2, q);
    }

    #[test]
    fn example5_maximum_between_active_values() {
        // Distilled from Example 5: the witness boundary value may fall in
        // a gap of the active domain. q = A(x) ⋈ B(w, u), A/B over
        // disjoint values, predicates x > w is a comparison spanning the
        // B-only residual when A is removed.
        let mut d = Database::new();
        d.insert_tuple("A", &[Value(3)]);
        d.insert_tuple("A", &[Value(5)]);
        let mut rel = dpcq_relation::Relation::new(2);
        for e in [[1, 1], [2, 1], [3, 1]] {
            rel.insert(&[Value(e[0]), Value(e[1])]);
        }
        d.insert_relation("B", rel);
        let q = parse_query("Q(*) :- A(x), B(w, u), w < x, x < 5").unwrap();
        let (q2, d2, _) = materialize_comparisons(&q, &d, 1024).unwrap();
        let ev2 = Evaluator::new(&q2, &d2).unwrap();
        // Full count: x ∈ {3} (x<5), w < 3: rows (1,1),(2,1) ⇒ 2.
        assert_eq!(ev2.count().unwrap(), 2);
    }
}
