//! Cooperative cancellation for long evaluations.
//!
//! A `T`-family evaluation can cover up to `2^n` residual subsets; a
//! serving deadline must be able to stop it *between* units of work
//! without poisoning any shared state. [`CancelToken`] is the handle:
//! cheap to copy, checked at the family evaluator's class-pickup
//! checkpoints (see [`crate::FamilyEvaluator::t_family_with_cancel`]),
//! and surfaced as [`EvalError::Cancelled`] so callers can distinguish a
//! deadline from a real evaluation failure.
//!
//! Cancellation is *cooperative and coarse*: a token is only consulted
//! before each isomorphism class is picked up, so a single enormous
//! class can still overrun its deadline — but every already-memoized
//! factor and value computed before the trip remains valid and is
//! reused by a retry.

use crate::error::EvalError;
use std::time::Instant;

/// A copyable cancellation handle carrying an optional deadline.
///
/// [`CancelToken::never`] (the [`Default`]) never cancels and costs one
/// branch per checkpoint.
#[derive(Clone, Copy, Debug, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never cancels.
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// A token that cancels once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            deadline: Some(deadline),
        }
    }

    /// Whether the token has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Checkpoint form: `Err(EvalError::Cancelled)` once tripped.
    pub fn check(&self) -> Result<(), EvalError> {
        if self.is_cancelled() {
            Err(EvalError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_token_never_trips() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let t = CancelToken::with_deadline(Instant::now());
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(EvalError::Cancelled));
    }

    #[test]
    fn future_deadline_does_not_trip_yet() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }
}
