//! Eval-scoped value compression and per-thread scratch arenas.
//!
//! The columnar factor kernel ([`crate::factor`]) does not operate on raw
//! [`Value`]s (`i64`): every value appearing in an evaluation is interned
//! once into a [`Domain`] — a dense `Value ↔ u32` code map scoped to one
//! [`crate::Evaluator`] — and factors store rows of `u32` codes. Joins,
//! eliminations and column merges only ever *combine* existing values, so
//! the domain is frozen (`Arc<Domain>`) right after the atom factors are
//! built and shared read-only across every derived factor and worker
//! thread. Codes decode back to values only at the consumer boundary
//! (`Factor::row`/`Factor::iter`, predicate evaluation, witnesses).
//!
//! ## Reconciling frozen domains across mutations
//!
//! The freeze is per-`Evaluator`, not per-database-lifetime. When tuples
//! are inserted *after* a domain was frozen — e.g. an engine retains a
//! [`crate::FamilyCache`] across a mutation of a relation its query does
//! not mention — factors memoized earlier keep their old (smaller)
//! domain while a fresh evaluator over the mutated database interns the
//! new values into a new one. The kernel reconciles the two at join
//! time: a join between factors whose domains are not pointer-equal
//! clones the larger side's domain, interns the other side's values into
//! it, and re-encodes that side's codes once (`Factor::join_core`).
//! Equality of codes is therefore only ever compared within one merged
//! domain, and values unknown to the older factor simply never match its
//! rows — exactly the semantics the raw values would have had. This is
//! the documented reuse path for caches retained across unrelated
//! mutations; caches whose *own* read-set relations changed are retired
//! by their stamps instead (see [`crate::FamilyCache`]).
//!
//! [`Scratch`] is the kernel's per-thread arena: the unaggregated output
//! rows, sort-key buffers, and probe-key buffer every kernel call needs.
//! It lives in a thread local, so the steady state of a long release —
//! including the work-stealing workers of
//! [`crate::FamilyEvaluator::t_family`] — reuses the same buffers instead
//! of reallocating them per join.

use dpcq_relation::{FxHashMap, Value};
use std::cell::RefCell;

/// A frozen, evaluation-scoped bijection between the values occurring in
/// the instance and dense `u32` codes.
///
/// Codes are assigned in interning order; equality of codes is equality of
/// values (within one domain), which is all the join/elimination kernel
/// needs. Order comparisons decode first.
#[derive(Clone, Debug, Default)]
pub(crate) struct Domain {
    values: Vec<Value>,
    codes: FxHashMap<Value, u32>,
}

impl Domain {
    /// An empty domain.
    pub(crate) fn new() -> Self {
        Domain::default()
    }

    /// Interns `v`, assigning the next dense code on first sight.
    pub(crate) fn intern(&mut self, v: Value) -> u32 {
        if let Some(&c) = self.codes.get(&v) {
            return c;
        }
        let c = u32::try_from(self.values.len()).expect("active domain exceeds u32 codes");
        self.codes.insert(v, c);
        self.values.push(v);
        c
    }

    /// Decodes a code. Codes are only ever produced by [`Domain::intern`]
    /// on this same domain, so this is a plain array load.
    #[inline]
    pub(crate) fn value(&self, code: u32) -> Value {
        self.values[code as usize]
    }

    /// All interned values in code order (used when merging two domains).
    pub(crate) fn values(&self) -> &[Value] {
        &self.values
    }

    /// Whether nothing has been interned.
    pub(crate) fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Sort-buffer portion of the scratch arena (separate struct so the
/// aggregation routine can borrow it while reading the emit buffers).
#[derive(Default, Debug)]
pub(crate) struct SortBuf {
    /// `(packed key, row index)` pairs for output arities ≤ 2.
    pub(crate) k64: Vec<(u64, u32)>,
    /// `(packed key, row index)` pairs for output arities 3–4.
    pub(crate) k128: Vec<(u128, u32)>,
    /// Plain row-index permutation for wider outputs.
    pub(crate) idx: Vec<u32>,
}

/// Emit-buffer portion of the scratch arena: unaggregated output rows.
#[derive(Default, Debug)]
pub(crate) struct Emit {
    /// Flat code storage of the emitted (pre-aggregation) rows.
    pub(crate) codes: Vec<u32>,
    /// Parallel emitted weights.
    pub(crate) weights: Vec<u128>,
}

/// The per-thread arena threaded through every factor-kernel call.
#[derive(Default, Debug)]
pub(crate) struct Scratch {
    pub(crate) emit: Emit,
    pub(crate) sort: SortBuf,
    /// Join-key buffer (probe side).
    pub(crate) key: Vec<u32>,
    /// `(key id, row index)` pairs for join-index construction.
    pub(crate) hashes: Vec<(u64, u32)>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs `f` with this thread's scratch arena. Kernel entry points call
/// this exactly once and pass the arena down by `&mut`, so the borrow is
/// never held reentrantly; if a future refactor nests entry points anyway,
/// the inner call falls back to a fresh arena instead of panicking.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut s) => f(&mut s),
        Err(_) => f(&mut Scratch::default()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Domain::new();
        assert!(d.is_empty());
        let a = d.intern(Value(42));
        let b = d.intern(Value(-7));
        assert_eq!(d.intern(Value(42)), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.values().len(), 2);
        assert_eq!(d.value(a), Value(42));
        assert_eq!(d.value(b), Value(-7));
        assert_eq!(d.values(), &[Value(42), Value(-7)]);
    }

    #[test]
    fn scratch_is_reused_within_a_thread() {
        let ptr1 = with_scratch(|s| {
            s.emit.codes.push(1);
            s.emit.codes.as_ptr() as usize
        });
        let ptr2 = with_scratch(|s| {
            assert_eq!(s.emit.codes, vec![1]);
            s.emit.codes.as_ptr() as usize
        });
        assert_eq!(ptr1, ptr2);
    }

    #[test]
    fn reentrant_scratch_does_not_panic() {
        with_scratch(|_outer| {
            let v = with_scratch(|inner| {
                inner.key.push(9);
                inner.key.len()
            });
            assert_eq!(v, 1);
        });
    }
}
