//! Per-relation version vectors and read-set stamps.
//!
//! A [`Database`](crate::Database) carries one monotone
//! [`RelationVersion`] counter per relation name, bumped by every
//! mutation that (possibly) changes that relation's contents and by
//! nothing else. The vector of all counters is a *version vector* in the
//! distributed-systems sense: it orders database states per relation
//! rather than globally, which is exactly the grain at which cached
//! derived results stay valid — a `T`-family factor store, a residual
//! value cache, or a released noisy answer for a query `q` is a pure
//! function of the relations `q`'s atoms mention (its *read set*), so a
//! mutation of any *other* relation cannot invalidate it.
//!
//! A [`VersionStamp`] is the version vector restricted to a read set: a
//! sorted `(name, version)` fingerprint. Two stamps over the same read
//! set are equal iff none of those relations was mutated in between,
//! which makes the stamp a sound cache key: key derived results by
//! `(inputs, stamp)` and they survive every mutation outside their read
//! set, while any mutation inside it changes the stamp and retires them.
//!
//! Worked example (two relations): with `R@0, S@0`, a release of
//! `Q_R(*) :- R(x,y)` is stamped `{R@0}` and one of `Q_S(*) :- S(x,y)`
//! is stamped `{S@0}`. Inserting a tuple into `S` moves the vector to
//! `R@0, S@1`: `Q_S`'s stamp is now `{S@1}` (its cached results are
//! stale), but `Q_R`'s stamp is still `{R@0}` — everything cached for it
//! replays untouched.

use std::fmt;

/// A per-relation mutation counter. `0` until the relation is first
/// mutated; every effective mutation adds one. Versions are local to one
/// [`Database`](crate::Database) value (clones carry their counters
/// along but advance independently afterwards).
pub type RelationVersion = u64;

/// The version vector restricted to a set of relation names: a sorted,
/// deduplicated `(name, version)` fingerprint.
///
/// Built by [`Database::stamp`](crate::Database::stamp) /
/// [`Database::stamp_all`](crate::Database::stamp_all) (or
/// [`VersionStamp::new`] from explicit pairs, which callers use to
/// re-base versions). Equality is the whole point: two stamps taken over
/// the same read set from the same database are equal iff no relation in
/// the read set was mutated between them.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionStamp {
    /// Sorted by name, one entry per name.
    pairs: Vec<(String, RelationVersion)>,
}

impl VersionStamp {
    /// A stamp from explicit `(name, version)` pairs. Pairs are sorted by
    /// name; duplicate names keep the first version listed.
    pub fn new(pairs: impl IntoIterator<Item = (String, RelationVersion)>) -> Self {
        let mut pairs: Vec<(String, RelationVersion)> = pairs.into_iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|a, b| a.0 == b.0);
        VersionStamp { pairs }
    }

    /// The empty stamp (an empty read set).
    pub fn empty() -> Self {
        VersionStamp::default()
    }

    /// The recorded version of `name`, or `None` if the stamp's read set
    /// does not contain it.
    pub fn version_of(&self, name: &str) -> Option<RelationVersion> {
        self.pairs
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// Whether `name` is part of the stamp's read set.
    pub fn mentions(&self, name: &str) -> bool {
        self.version_of(name).is_some()
    }

    /// The `(name, version)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, RelationVersion)> {
        self.pairs.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of relations in the read set.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the read set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl fmt::Display for VersionStamp {
    /// `{R@0, S@2}` — the notation used throughout the caching docs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}@{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups_by_name() {
        let s = VersionStamp::new([
            ("S".to_string(), 2),
            ("R".to_string(), 0),
            ("S".to_string(), 9),
        ]);
        assert_eq!(s.len(), 2);
        let pairs: Vec<(&str, RelationVersion)> = s.iter().collect();
        assert_eq!(pairs, vec![("R", 0), ("S", 2)]);
        assert_eq!(s.version_of("R"), Some(0));
        assert_eq!(s.version_of("S"), Some(2));
        assert_eq!(s.version_of("T"), None);
        assert!(s.mentions("S"));
        assert!(!s.mentions("T"));
    }

    #[test]
    fn equality_is_per_name_version() {
        let a = VersionStamp::new([("R".to_string(), 0), ("S".to_string(), 1)]);
        let b = VersionStamp::new([("S".to_string(), 1), ("R".to_string(), 0)]);
        let c = VersionStamp::new([("R".to_string(), 0), ("S".to_string(), 2)]);
        let d = VersionStamp::new([("R".to_string(), 0)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn empty_and_display() {
        assert!(VersionStamp::empty().is_empty());
        assert_eq!(VersionStamp::empty().to_string(), "{}");
        let s = VersionStamp::new([("S".to_string(), 1), ("R".to_string(), 0)]);
        assert_eq!(s.to_string(), "{R@0, S@1}");
    }
}
