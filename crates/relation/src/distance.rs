//! Tuple-DP distances (Section 2.2 of the paper).
//!
//! A "step" turns one instance into a neighboring one by inserting,
//! deleting, or substituting a single tuple. For two *sets* of tuples `A`
//! and `B`, the minimum number of steps is
//!
//! ```text
//! d(A, B) = max(|A \ B|, |B \ A|)
//! ```
//!
//! (match up as many removals with insertions as possible into
//! substitutions; the remainder are plain inserts or deletes). The distance
//! between database instances is the sum over physical relations:
//! `d(I, I') = Σ_i d(I_i, I'_i)`.

use crate::{Database, Relation};

/// Returns `(|A \ B|, |B \ A|)` for two relations of equal arity.
///
/// # Panics
/// Panics if the arities differ.
pub fn set_difference_sizes(a: &Relation, b: &Relation) -> (usize, usize) {
    assert_eq!(a.arity(), b.arity(), "relation arity mismatch");
    let a_minus_b = a.iter().filter(|row| !b.contains(row)).count();
    let b_minus_a = b.iter().filter(|row| !a.contains(row)).count();
    (a_minus_b, b_minus_a)
}

/// The tuple-DP edit distance between two relation instances:
/// `max(|A \ B|, |B \ A|)`.
pub fn relation_distance(a: &Relation, b: &Relation) -> usize {
    let (ab, ba) = set_difference_sizes(a, b);
    ab.max(ba)
}

/// The tuple-DP distance between database instances:
/// `d(I, I') = Σ over physical relations of relation_distance`.
///
/// Relations present in only one of the two databases contribute their full
/// size (every tuple must be inserted/deleted).
pub fn database_distance(a: &Database, b: &Database) -> usize {
    let mut total = 0usize;
    for (name, ra) in a.iter() {
        match b.relation(name) {
            Some(rb) => total += relation_distance(ra, rb),
            None => total += ra.len(),
        }
    }
    for (name, rb) in b.iter() {
        if !a.has_relation(name) {
            total += rb.len();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vals;

    fn rel(rows: &[[i64; 2]]) -> Relation {
        let mut r = Relation::new(2);
        for row in rows {
            r.insert(&[crate::Value(row[0]), crate::Value(row[1])]);
        }
        r
    }

    #[test]
    fn identical_relations_have_distance_zero() {
        let a = rel(&[[1, 2], [3, 4]]);
        assert_eq!(relation_distance(&a, &a.clone()), 0);
    }

    #[test]
    fn substitution_counts_once() {
        // {1,2} -> {1,3}: one substitution.
        let a = rel(&[[1, 1], [2, 2]]);
        let b = rel(&[[1, 1], [3, 3]]);
        assert_eq!(relation_distance(&a, &b), 1);
    }

    #[test]
    fn pure_insertions() {
        let a = rel(&[[1, 1]]);
        let b = rel(&[[1, 1], [2, 2], [3, 3]]);
        assert_eq!(relation_distance(&a, &b), 2);
        assert_eq!(relation_distance(&b, &a), 2); // symmetric
    }

    #[test]
    fn mixed_edits_take_max() {
        // A has 3 private rows, B has 1 private row: 1 subst + 2 deletes = 3.
        let a = rel(&[[1, 1], [2, 2], [3, 3], [9, 9]]);
        let b = rel(&[[4, 4], [9, 9]]);
        assert_eq!(set_difference_sizes(&a, &b), (3, 1));
        assert_eq!(relation_distance(&a, &b), 3);
    }

    #[test]
    fn database_distance_sums_relations() {
        let mut da = Database::new();
        da.insert_tuple("R", &vals![1, 1]);
        da.insert_tuple("S", &vals![5]);
        let mut db = Database::new();
        db.insert_tuple("R", &vals![2, 2]);
        db.insert_tuple("S", &vals![5]);
        assert_eq!(database_distance(&da, &db), 1);
        db.insert_tuple("T", &vals![0]);
        assert_eq!(database_distance(&da, &db), 2);
        assert_eq!(database_distance(&db, &da), 2);
    }

    #[test]
    fn triangle_inequality_on_random_instances() {
        // d is a metric on relation sets; spot-check the triangle inequality.
        let mut state = 7u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as i64 % 6
        };
        for _ in 0..50 {
            let mk = |rnd: &mut dyn FnMut() -> i64| {
                let mut r = Relation::new(2);
                for _ in 0..8 {
                    r.insert(&[crate::Value(rnd()), crate::Value(rnd())]);
                }
                r
            };
            let a = mk(&mut rnd);
            let b = mk(&mut rnd);
            let c = mk(&mut rnd);
            assert!(
                relation_distance(&a, &c) <= relation_distance(&a, &b) + relation_distance(&b, &c)
            );
        }
    }
}
