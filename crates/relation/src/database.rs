//! Database instances: named collections of physical relations.

use crate::version::{RelationVersion, VersionStamp};
use crate::{Relation, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A database instance `I` over a schema `R`: a map from physical relation
/// names to [`Relation`] instances.
///
/// The paper distinguishes *physical* relation instances (what is stored,
/// and what the DP distance is measured on) from *logical* instances
/// (per-atom renamings used when a query contains self-joins). `Database`
/// stores only physical instances; the logical view lives in `dpcq-query` /
/// `dpcq-eval`.
///
/// ## Version vector
///
/// Alongside each relation the database keeps a monotone
/// [`RelationVersion`] counter (see the [`crate::version`] module):
///
/// * [`Database::insert_tuple`] / [`Database::remove_tuple`] bump the
///   touched relation's counter **only when the mutation is effective**
///   (the tuple was actually added / removed);
/// * [`Database::insert_relation`], [`Database::create_relation`] and
///   [`Database::relation_mut`] bump **conservatively** — they hand out
///   (or replace) whole relation values, so the database must assume the
///   contents changed.
///
/// [`Database::stamp`] fingerprints the vector restricted to a read set;
/// caching layers key derived results by it so a mutation of one relation
/// retires only the results whose read set contains it. Versions are
/// bookkeeping, not data: they are ignored by `==` (equality is
/// structural over the stored relations) and carried along by `Clone`.
#[derive(Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    /// Per-relation mutation counters; names absent here are at version 0.
    versions: BTreeMap<String, RelationVersion>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    fn bump(&mut self, name: &str) {
        *self.versions.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Inserts (or replaces) a relation instance under `name`. Bumps the
    /// relation's version (the contents are assumed to have changed).
    pub fn insert_relation(&mut self, name: impl Into<String>, rel: Relation) -> Option<Relation> {
        let name = name.into();
        self.bump(&name);
        self.relations.insert(name, rel)
    }

    /// Convenience: creates an empty relation of the given arity under
    /// `name` and returns a mutable reference to it. Bumps the relation's
    /// version conservatively (the caller holds mutable access).
    pub fn create_relation(&mut self, name: impl Into<String>, arity: usize) -> &mut Relation {
        let name = name.into();
        self.bump(&name);
        self.relations
            .entry(name)
            .or_insert_with(|| Relation::new(arity))
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable lookup. Bumps the relation's version conservatively when
    /// the relation exists (the caller holds mutable access; the database
    /// cannot see whether it is used).
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        if self.relations.contains_key(name) {
            self.bump(name);
        }
        self.relations.get_mut(name)
    }

    /// Iterates over `(name, relation)` pairs in name order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// All relation names, in sorted order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Whether a relation with this name exists.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples `N = |I|` across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Inserts a tuple into the named relation, creating the relation with
    /// the row's arity if absent. Returns `true` if the tuple was new; an
    /// effective insert bumps the relation's version.
    pub fn insert_tuple(&mut self, name: &str, row: &[Value]) -> bool {
        let changed = self
            .relations
            .entry(name.to_string())
            .or_insert_with(|| Relation::new(row.len()))
            .insert(row);
        if changed {
            self.bump(name);
        }
        changed
    }

    /// Removes a tuple from the named relation. Returns `true` if present;
    /// an effective removal bumps the relation's version.
    pub fn remove_tuple(&mut self, name: &str, row: &[Value]) -> bool {
        let changed = self.relations.get_mut(name).is_some_and(|r| r.remove(row));
        if changed {
            self.bump(name);
        }
        changed
    }

    /// Recovery-only: overwrites `name`'s version counter with a value
    /// restored from a durable snapshot, so version stamps (and therefore
    /// cache keys) survive a restart. Normal mutation paths must use the
    /// implicit bumps; calling this on a live database invalidates the
    /// monotonicity that scoped cache invalidation relies on.
    pub fn restore_version(&mut self, name: &str, version: RelationVersion) {
        self.versions.insert(name.to_string(), version);
    }

    /// The current [`RelationVersion`] of `name` (0 if never mutated —
    /// including for relations that do not exist).
    pub fn version_of(&self, name: &str) -> RelationVersion {
        self.versions.get(name).copied().unwrap_or(0)
    }

    /// The version vector restricted to `names` (a read set): the
    /// [`VersionStamp`] caching layers key derived results by. Names that
    /// do not (yet) exist stamp at version 0, so a stamp taken before a
    /// relation is first created still differs from one taken after.
    pub fn stamp<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> VersionStamp {
        VersionStamp::new(
            names
                .into_iter()
                .map(|n| (n.to_string(), self.version_of(n))),
        )
    }

    /// The full version vector, over every relation currently stored.
    pub fn stamp_all(&self) -> VersionStamp {
        self.stamp(self.relation_names())
    }

    /// The set of integers appearing anywhere in the listed relations
    /// (used to build active domains, Section 5.2). Attribute positions are
    /// not distinguished: the paper's `Z*(I)` collects the integers
    /// appearing in `I` on the predicate attributes; callers that need a
    /// finer grain can scan relations directly.
    pub fn active_values(&self) -> Vec<Value> {
        let mut vs: Vec<Value> = self
            .relations
            .values()
            .flat_map(|r| r.iter().flatten().copied())
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

/// Structural equality over the stored relations; version counters are
/// bookkeeping and do not participate (two databases holding the same
/// tuples compare equal regardless of their mutation histories).
impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Eq for Database {}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Database");
        for (name, rel) in &self.relations {
            s.field(name, rel);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vals;

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1, 2]);
        db.insert_tuple("R", &vals![1, 2]);
        db.insert_tuple("S", &vals![7]);
        assert_eq!(db.relation("R").unwrap().len(), 1);
        assert_eq!(db.relation("S").unwrap().len(), 1);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.has_relation("R"));
        assert!(!db.has_relation("T"));
    }

    #[test]
    fn remove_tuple_works() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1, 2]);
        assert!(db.remove_tuple("R", &vals![1, 2]));
        assert!(!db.remove_tuple("R", &vals![1, 2]));
        assert!(!db.remove_tuple("Missing", &vals![1, 2]));
    }

    #[test]
    fn active_values_sorted_dedup() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![3, 1]);
        db.insert_tuple("S", &vals![1, 9]);
        assert_eq!(db.active_values(), vec![Value(1), Value(3), Value(9)]);
    }

    #[test]
    fn names_are_sorted() {
        let mut db = Database::new();
        db.create_relation("Zeta", 1);
        db.create_relation("Alpha", 1);
        let names: Vec<&str> = db.relation_names().collect();
        assert_eq!(names, vec!["Alpha", "Zeta"]);
    }

    #[test]
    fn equality_is_structural() {
        let mut a = Database::new();
        a.insert_tuple("R", &vals![1, 2]);
        let mut b = Database::new();
        b.insert_tuple("R", &vals![1, 2]);
        assert_eq!(a, b);
        b.insert_tuple("R", &vals![2, 2]);
        assert_ne!(a, b);
    }

    #[test]
    fn equality_ignores_versions() {
        let mut a = Database::new();
        a.insert_tuple("R", &vals![1, 2]);
        let mut b = Database::new();
        b.insert_tuple("R", &vals![1, 2]);
        // Different mutation histories, same contents.
        b.insert_tuple("R", &vals![3, 4]);
        b.remove_tuple("R", &vals![3, 4]);
        assert_ne!(a.version_of("R"), b.version_of("R"));
        assert_eq!(a, b);
    }

    #[test]
    fn effective_mutations_bump_only_the_touched_relation() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1, 2]);
        db.insert_tuple("S", &vals![7]);
        let (r0, s0) = (db.version_of("R"), db.version_of("S"));
        // No-op insert and removal: no bumps anywhere.
        db.insert_tuple("R", &vals![1, 2]);
        db.remove_tuple("R", &vals![9, 9]);
        db.remove_tuple("Missing", &vals![1]);
        assert_eq!((db.version_of("R"), db.version_of("S")), (r0, s0));
        // Effective insert into S bumps S only.
        db.insert_tuple("S", &vals![8]);
        assert_eq!(db.version_of("R"), r0);
        assert_eq!(db.version_of("S"), s0 + 1);
        // Effective removal from R bumps R only.
        db.remove_tuple("R", &vals![1, 2]);
        assert_eq!(db.version_of("R"), r0 + 1);
        assert_eq!(db.version_of("S"), s0 + 1);
        // Absent relations sit at version 0.
        assert_eq!(db.version_of("Missing"), 0);
    }

    #[test]
    fn whole_relation_access_bumps_conservatively() {
        let mut db = Database::new();
        db.create_relation("R", 2);
        let v1 = db.version_of("R");
        assert!(v1 > 0, "create_relation must bump");
        assert!(db.relation_mut("R").is_some());
        assert_eq!(db.version_of("R"), v1 + 1, "relation_mut must bump");
        assert!(db.relation_mut("Missing").is_none());
        assert_eq!(db.version_of("Missing"), 0, "missing lookup must not");
        db.insert_relation("R", Relation::new(2));
        assert_eq!(db.version_of("R"), v1 + 2, "insert_relation must bump");
        // Read-only access never bumps.
        let _ = db.relation("R");
        let _ = db.stamp_all();
        assert_eq!(db.version_of("R"), v1 + 2);
    }

    #[test]
    fn restore_version_overwrites_and_resumes_bumping() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1, 2]);
        // Snapshot import: put the counter exactly where the crashed
        // instance left it, even if the rebuild itself bumped it.
        db.restore_version("R", 41);
        assert_eq!(db.version_of("R"), 41);
        assert_eq!(db.stamp(["R"]).version_of("R"), Some(41));
        db.insert_tuple("R", &vals![3, 4]);
        assert_eq!(db.version_of("R"), 42, "bumping resumes from restored");
        // Restoring an untouched name just pins it.
        db.restore_version("Fresh", 7);
        assert_eq!(db.version_of("Fresh"), 7);
    }

    #[test]
    fn stamps_fingerprint_read_sets() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1, 2]);
        db.insert_tuple("S", &vals![7]);
        let r_before = db.stamp(["R"]);
        let s_before = db.stamp(["S"]);
        let all_before = db.stamp_all();
        db.insert_tuple("S", &vals![8]);
        // R's stamp is untouched; S's and the full stamp moved.
        assert_eq!(db.stamp(["R"]), r_before);
        assert_ne!(db.stamp(["S"]), s_before);
        assert_ne!(db.stamp_all(), all_before);
        // Stamps are order-insensitive and cover absent names at 0.
        assert_eq!(db.stamp(["S", "R"]), db.stamp(["R", "S"]));
        assert_eq!(db.stamp(["Nope"]).version_of("Nope"), Some(0));
    }
}
