//! Database instances: named collections of physical relations.

use crate::{Relation, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A database instance `I` over a schema `R`: a map from physical relation
/// names to [`Relation`] instances.
///
/// The paper distinguishes *physical* relation instances (what is stored,
/// and what the DP distance is measured on) from *logical* instances
/// (per-atom renamings used when a query contains self-joins). `Database`
/// stores only physical instances; the logical view lives in `dpcq-query` /
/// `dpcq-eval`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts (or replaces) a relation instance under `name`.
    pub fn insert_relation(&mut self, name: impl Into<String>, rel: Relation) -> Option<Relation> {
        self.relations.insert(name.into(), rel)
    }

    /// Convenience: creates an empty relation of the given arity under
    /// `name` and returns a mutable reference to it.
    pub fn create_relation(&mut self, name: impl Into<String>, arity: usize) -> &mut Relation {
        let name = name.into();
        self.relations
            .entry(name)
            .or_insert_with(|| Relation::new(arity))
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable lookup.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Iterates over `(name, relation)` pairs in name order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// All relation names, in sorted order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Whether a relation with this name exists.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples `N = |I|` across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Inserts a tuple into the named relation, creating the relation with
    /// the row's arity if absent. Returns `true` if the tuple was new.
    pub fn insert_tuple(&mut self, name: &str, row: &[Value]) -> bool {
        self.relations
            .entry(name.to_string())
            .or_insert_with(|| Relation::new(row.len()))
            .insert(row)
    }

    /// Removes a tuple from the named relation. Returns `true` if present.
    pub fn remove_tuple(&mut self, name: &str, row: &[Value]) -> bool {
        self.relations.get_mut(name).is_some_and(|r| r.remove(row))
    }

    /// The set of integers appearing anywhere in the listed relations
    /// (used to build active domains, Section 5.2). Attribute positions are
    /// not distinguished: the paper's `Z*(I)` collects the integers
    /// appearing in `I` on the predicate attributes; callers that need a
    /// finer grain can scan relations directly.
    pub fn active_values(&self) -> Vec<Value> {
        let mut vs: Vec<Value> = self
            .relations
            .values()
            .flat_map(|r| r.iter().flatten().copied())
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Database");
        for (name, rel) in &self.relations {
            s.field(name, rel);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vals;

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1, 2]);
        db.insert_tuple("R", &vals![1, 2]);
        db.insert_tuple("S", &vals![7]);
        assert_eq!(db.relation("R").unwrap().len(), 1);
        assert_eq!(db.relation("S").unwrap().len(), 1);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.has_relation("R"));
        assert!(!db.has_relation("T"));
    }

    #[test]
    fn remove_tuple_works() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![1, 2]);
        assert!(db.remove_tuple("R", &vals![1, 2]));
        assert!(!db.remove_tuple("R", &vals![1, 2]));
        assert!(!db.remove_tuple("Missing", &vals![1, 2]));
    }

    #[test]
    fn active_values_sorted_dedup() {
        let mut db = Database::new();
        db.insert_tuple("R", &vals![3, 1]);
        db.insert_tuple("S", &vals![1, 9]);
        assert_eq!(db.active_values(), vec![Value(1), Value(3), Value(9)]);
    }

    #[test]
    fn names_are_sorted() {
        let mut db = Database::new();
        db.create_relation("Zeta", 1);
        db.create_relation("Alpha", 1);
        let names: Vec<&str> = db.relation_names().collect();
        assert_eq!(names, vec!["Alpha", "Zeta"]);
    }

    #[test]
    fn equality_is_structural() {
        let mut a = Database::new();
        a.insert_tuple("R", &vals![1, 2]);
        let mut b = Database::new();
        b.insert_tuple("R", &vals![1, 2]);
        assert_eq!(a, b);
        b.insert_tuple("R", &vals![2, 2]);
        assert_ne!(a, b);
    }
}
