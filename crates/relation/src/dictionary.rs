//! Dictionary encoding of non-integer source data into the [`Value`] space.

use crate::{FxHashMap, Value};
use std::sync::Arc;

/// A bidirectional mapping between strings and dense integer codes.
///
/// The sensitivity machinery works over integer domains; real datasets often
/// carry string keys (author names, labels). `Dictionary` assigns each
/// distinct string a dense code `0, 1, 2, …` so relations can be loaded as
/// integer tuples and decoded back for display.
///
/// Both directions share one `Arc<str>` per distinct string, so encoding a
/// fresh string costs exactly one string allocation.
#[derive(Clone, Default, Debug)]
pub struct Dictionary {
    to_code: FxHashMap<Arc<str>, i64>,
    to_str: Vec<Arc<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Encodes `s`, assigning a fresh code on first sight.
    pub fn encode(&mut self, s: &str) -> Value {
        if let Some(&c) = self.to_code.get(s) {
            return Value(c);
        }
        let c = self.to_str.len() as i64;
        let shared: Arc<str> = Arc::from(s);
        self.to_code.insert(Arc::clone(&shared), c);
        self.to_str.push(shared);
        Value(c)
    }

    /// Looks up the code for `s` without inserting.
    pub fn get(&self, s: &str) -> Option<Value> {
        self.to_code.get(s).map(|&c| Value(c))
    }

    /// Decodes a value previously produced by [`Dictionary::encode`].
    pub fn decode(&self, v: Value) -> Option<&str> {
        usize::try_from(v.0)
            .ok()
            .and_then(|i| self.to_str.get(i))
            .map(AsRef::as_ref)
    }

    /// Number of distinct strings seen.
    pub fn len(&self) -> usize {
        self.to_str.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.to_str.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode("alice");
        let b = d.encode("bob");
        assert_ne!(a, b);
        assert_eq!(d.encode("alice"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = Dictionary::new();
        let a = d.encode("x");
        assert_eq!(d.decode(a), Some("x"));
        assert_eq!(d.decode(Value(99)), None);
        assert_eq!(d.decode(Value(-1)), None);
    }

    #[test]
    fn encode_preserves_len_and_shares_storage() {
        let mut d = Dictionary::new();
        for s in ["a", "b", "a", "c", "b", "a"] {
            d.encode(s);
        }
        // One entry per distinct string in both directions.
        assert_eq!(d.len(), 3);
        assert_eq!(d.to_code.len(), d.to_str.len());
        // Both directions share one allocation per string (the map key and
        // the decode slot are the same `Arc<str>`): 2 strong refs each.
        for s in &d.to_str {
            assert_eq!(Arc::strong_count(s), 2);
        }
    }

    #[test]
    fn get_does_not_insert() {
        let mut d = Dictionary::new();
        assert_eq!(d.get("nope"), None);
        d.encode("yes");
        assert_eq!(d.get("yes"), Some(Value(0)));
        assert_eq!(d.len(), 1);
    }
}
