#![deny(unsafe_code)]
//! # dpcq-relation — relational substrate
//!
//! This crate provides the data model underlying the `dpcq` differential
//! privacy library, following Section 2 of Dong & Yi, *"A Nearly
//! Instance-optimal Differentially Private Mechanism for Conjunctive
//! Queries"* (PODS 2022):
//!
//! * [`Value`] — a dictionary-encodable attribute value (an `i64` under the
//!   hood; integer domains are all the paper's predicates need, and
//!   [`Dictionary`] maps arbitrary strings into the value space).
//! * [`Relation`] — a **set-semantics** relation of fixed arity with O(1)
//!   insert/remove/contains. Conjunctive queries in the paper are evaluated
//!   under set semantics, and the tuple-DP neighborhood is defined by
//!   inserting/deleting/substituting tuples.
//! * [`Database`] — a named collection of physical relation instances `I`.
//! * [`distance`] — the tuple-DP distance `d(I, I')` (minimum number of
//!   insert/delete/substitute steps), per relation and per database.
//! * [`version`] — per-relation [`RelationVersion`] counters and
//!   [`VersionStamp`] read-set fingerprints, the keys the caching layers
//!   upstack (eval memo stores, the server's release cache) use to scope
//!   invalidation to the relations a mutation actually touched.
//! * [`fxhash`] — a fast FxHash-style hasher used throughout the workspace
//!   for integer-keyed hash maps (implemented in-tree; see DESIGN.md).

pub mod database;
pub mod dictionary;
pub mod distance;
pub mod fxhash;
pub mod relation;
pub mod value;
pub mod version;

pub use database::Database;
pub use dictionary::Dictionary;
pub use distance::{database_distance, relation_distance, set_difference_sizes};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use relation::Relation;
pub use value::Value;
pub use version::{RelationVersion, VersionStamp};
