//! Set-semantics relations of fixed arity.
//!
//! A [`Relation`] stores its rows in a single flat `Vec<Value>` (rows are
//! `arity`-sized windows) plus a hash index mapping row hashes to row
//! positions, giving O(1) expected insert / remove / membership while
//! keeping the row payload contiguous for fast scans during joins.

use crate::fxhash::{hash_row, FxHashMap};
use crate::Value;
use std::fmt;

/// A relation instance: a *set* of `arity`-tuples over [`Value`].
///
/// Conjunctive queries in the paper are evaluated under set semantics, and
/// the tuple-DP distance (Section 2.2) counts inserted / deleted /
/// substituted tuples, so duplicate suppression is part of the data model
/// rather than a query-time concern.
#[derive(Clone, Default)]
pub struct Relation {
    arity: usize,
    /// Flat row storage: row `i` is `data[i*arity .. (i+1)*arity]`.
    data: Vec<Value>,
    /// Row hash -> indices of rows with that hash (collision chain).
    index: FxHashMap<u64, Vec<u32>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    ///
    /// # Panics
    /// Panics if `arity == 0`; nullary relations are represented at the
    /// query level (the empty residual query has `T_∅ = 1` by convention).
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "Relation arity must be at least 1");
        Relation {
            arity,
            data: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// Creates an empty relation with pre-reserved capacity for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        assert!(arity > 0, "Relation arity must be at least 1");
        Relation {
            arity,
            data: Vec::with_capacity(rows * arity),
            index: FxHashMap::with_capacity_and_hasher(rows, Default::default()),
        }
    }

    /// Builds a relation from an iterator of rows, deduplicating.
    ///
    /// # Panics
    /// Panics if any row's length differs from `arity`.
    pub fn from_rows<R, I>(arity: usize, rows: I) -> Self
    where
        R: AsRef<[Value]>,
        I: IntoIterator<Item = R>,
    {
        let iter = rows.into_iter();
        let mut rel = Relation::with_capacity(arity, iter.size_hint().0);
        for r in iter {
            rel.insert(r.as_ref());
        }
        rel
    }

    /// The number of attributes per row.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of (distinct) rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over all rows in insertion order (perturbed by removals,
    /// which use swap-remove).
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Value]> + Clone {
        self.data.chunks_exact(self.arity)
    }

    /// Finds the position of `row`, if present.
    fn position(&self, row: &[Value]) -> Option<usize> {
        let h = hash_row(row);
        let bucket = self.index.get(&h)?;
        bucket
            .iter()
            .copied()
            .map(|i| i as usize)
            .find(|&i| self.row(i) == row)
    }

    /// Membership test.
    ///
    /// # Panics
    /// Panics if `row.len() != self.arity()`.
    pub fn contains(&self, row: &[Value]) -> bool {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.position(row).is_some()
    }

    /// Inserts a row; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `row.len() != self.arity()`.
    pub fn insert(&mut self, row: &[Value]) -> bool {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        let h = hash_row(row);
        if let Some(bucket) = self.index.get(&h) {
            if bucket
                .iter()
                .any(|&i| &self.data[i as usize * self.arity..(i as usize + 1) * self.arity] == row)
            {
                return false;
            }
        }
        let pos = self.len() as u32;
        self.data.extend_from_slice(row);
        self.index.entry(h).or_default().push(pos);
        true
    }

    /// Removes a row; returns `true` if it was present.
    ///
    /// Uses swap-remove: the last row moves into the removed slot.
    ///
    /// # Panics
    /// Panics if `row.len() != self.arity()`.
    pub fn remove(&mut self, row: &[Value]) -> bool {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        let Some(pos) = self.position(row) else {
            return false;
        };
        let h = hash_row(row);
        // Unlink `pos` from its bucket.
        let bucket = self.index.get_mut(&h).expect("bucket exists for found row");
        bucket.retain(|&i| i as usize != pos);
        if bucket.is_empty() {
            self.index.remove(&h);
        }
        let last = self.len() - 1;
        if pos != last {
            // Move the last row into the hole and retarget its index entry.
            let (head, tail) = self.data.split_at_mut(last * self.arity);
            head[pos * self.arity..(pos + 1) * self.arity].copy_from_slice(tail);
            let moved_hash = hash_row(&self.data[pos * self.arity..(pos + 1) * self.arity]);
            let moved_bucket = self
                .index
                .get_mut(&moved_hash)
                .expect("bucket exists for moved row");
            for slot in moved_bucket.iter_mut() {
                if *slot as usize == last {
                    *slot = pos as u32;
                    break;
                }
            }
        }
        self.data.truncate(last * self.arity);
        true
    }

    /// Substitutes `old` by `new` (one tuple-DP "change" step).
    ///
    /// Returns `true` if `old` was present (it is removed and `new`
    /// inserted); `false` leaves the relation untouched.
    pub fn substitute(&mut self, old: &[Value], new: &[Value]) -> bool {
        if !self.remove(old) {
            return false;
        }
        self.insert(new);
        true
    }

    /// Projects the relation onto the given column positions, deduplicating.
    ///
    /// # Panics
    /// Panics if `cols` is empty or any position is out of range.
    pub fn project(&self, cols: &[usize]) -> Relation {
        assert!(!cols.is_empty(), "projection onto zero columns");
        let mut out = Relation::with_capacity(cols.len(), self.len());
        let mut buf = vec![Value::default(); cols.len()];
        for row in self.iter() {
            for (b, &c) in buf.iter_mut().zip(cols) {
                *b = row[c];
            }
            out.insert(&buf);
        }
        out
    }

    /// Returns all rows as owned vectors (test/debug helper).
    pub fn to_sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = self.iter().map(|r| r.to_vec()).collect();
        rows.sort();
        rows
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity={}, {} rows)", self.arity, self.len())?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.to_sorted_rows())?;
        }
        Ok(())
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.len() == other.len()
            && self.iter().all(|r| other.contains(r))
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vals;

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(&vals![1, 2]));
        assert!(!r.insert(&vals![1, 2]));
        assert!(r.insert(&vals![2, 1]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn contains_and_remove() {
        let mut r = Relation::new(2);
        r.insert(&vals![1, 2]);
        r.insert(&vals![3, 4]);
        r.insert(&vals![5, 6]);
        assert!(r.contains(&vals![3, 4]));
        assert!(r.remove(&vals![3, 4]));
        assert!(!r.contains(&vals![3, 4]));
        assert!(!r.remove(&vals![3, 4]));
        assert_eq!(r.len(), 2);
        // The swap-removed last row is still reachable.
        assert!(r.contains(&vals![5, 6]));
        assert!(r.contains(&vals![1, 2]));
    }

    #[test]
    fn remove_last_row() {
        let mut r = Relation::new(1);
        r.insert(&vals![1]);
        r.insert(&vals![2]);
        assert!(r.remove(&vals![2]));
        assert!(r.contains(&vals![1]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn substitute_is_remove_plus_insert() {
        let mut r = Relation::new(2);
        r.insert(&vals![1, 1]);
        assert!(r.substitute(&vals![1, 1], &vals![2, 2]));
        assert!(r.contains(&vals![2, 2]));
        assert!(!r.contains(&vals![1, 1]));
        assert!(!r.substitute(&vals![9, 9], &vals![0, 0]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn substitute_to_existing_row_shrinks() {
        let mut r = Relation::new(1);
        r.insert(&vals![1]);
        r.insert(&vals![2]);
        assert!(r.substitute(&vals![1], &vals![2]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn project_dedups() {
        let r = Relation::from_rows(2, [vals![1, 9], vals![1, 8], vals![2, 7]]);
        let p = r.project(&[0]);
        assert_eq!(p.to_sorted_rows(), vec![vec![Value(1)], vec![Value(2)]]);
    }

    #[test]
    fn project_reorders_columns() {
        let r = Relation::from_rows(2, [vals![1, 9]]);
        let p = r.project(&[1, 0]);
        assert_eq!(p.to_sorted_rows(), vec![vec![Value(9), Value(1)]]);
    }

    #[test]
    fn equality_is_set_equality() {
        let a = Relation::from_rows(2, [vals![1, 2], vals![3, 4]]);
        let b = Relation::from_rows(2, [vals![3, 4], vals![1, 2]]);
        assert_eq!(a, b);
        let c = Relation::from_rows(2, [vals![1, 2]]);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(&vals![1]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_arity_panics() {
        let _ = Relation::new(0);
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        /// Operations applied to both the Relation and a BTreeSet model.
        #[derive(Debug, Clone)]
        enum Op {
            Insert(i64, i64),
            Remove(i64, i64),
            Substitute(i64, i64, i64, i64),
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0i64..8, 0i64..8).prop_map(|(a, b)| Op::Insert(a, b)),
                (0i64..8, 0i64..8).prop_map(|(a, b)| Op::Remove(a, b)),
                (0i64..8, 0i64..8, 0i64..8, 0i64..8)
                    .prop_map(|(a, b, c, d)| Op::Substitute(a, b, c, d)),
            ]
        }

        proptest! {
            #[test]
            fn behaves_like_a_set(ops in proptest::collection::vec(arb_op(), 0..120)) {
                use std::collections::BTreeSet;
                let mut model: BTreeSet<(i64, i64)> = BTreeSet::new();
                let mut rel = Relation::new(2);
                for op in ops {
                    match op {
                        Op::Insert(a, b) => {
                            prop_assert_eq!(
                                rel.insert(&[Value(a), Value(b)]),
                                model.insert((a, b))
                            );
                        }
                        Op::Remove(a, b) => {
                            prop_assert_eq!(
                                rel.remove(&[Value(a), Value(b)]),
                                model.remove(&(a, b))
                            );
                        }
                        Op::Substitute(a, b, c, d) => {
                            let had = model.remove(&(a, b));
                            if had {
                                model.insert((c, d));
                            }
                            prop_assert_eq!(
                                rel.substitute(&[Value(a), Value(b)], &[Value(c), Value(d)]),
                                had
                            );
                        }
                    }
                    prop_assert_eq!(rel.len(), model.len());
                }
                let got = rel.to_sorted_rows();
                let want: Vec<Vec<Value>> =
                    model.into_iter().map(|(a, b)| vec![Value(a), Value(b)]).collect();
                prop_assert_eq!(got, want);
            }

            #[test]
            fn distance_is_a_metric(
                a in proptest::collection::btree_set((0i64..5, 0i64..5), 0..10),
                b in proptest::collection::btree_set((0i64..5, 0i64..5), 0..10),
                c in proptest::collection::btree_set((0i64..5, 0i64..5), 0..10),
            ) {
                let mk = |s: &std::collections::BTreeSet<(i64, i64)>| {
                    Relation::from_rows(2, s.iter().map(|&(x, y)| [Value(x), Value(y)]))
                };
                let (ra, rb, rc) = (mk(&a), mk(&b), mk(&c));
                let d = crate::distance::relation_distance;
                prop_assert_eq!(d(&ra, &rb), d(&rb, &ra));
                prop_assert_eq!(d(&ra, &ra), 0);
                prop_assert!(d(&ra, &rc) <= d(&ra, &rb) + d(&rb, &rc));
                // Identity of indiscernibles.
                if d(&ra, &rb) == 0 {
                    prop_assert_eq!(ra.to_sorted_rows(), rb.to_sorted_rows());
                }
            }
        }
    }

    #[test]
    fn churn_against_model() {
        // Deterministic pseudo-random churn cross-checked against a BTreeSet.
        use std::collections::BTreeSet;
        let mut model: BTreeSet<Vec<Value>> = BTreeSet::new();
        let mut r = Relation::new(2);
        let mut state = 0x9e3779b97f4a7c15u64;
        for step in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = Value((state >> 33) as i64 % 20);
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = Value((state >> 33) as i64 % 20);
            let row = vec![a, b];
            if step % 3 == 0 {
                assert_eq!(r.remove(&row), model.remove(&row), "step {step}");
            } else {
                assert_eq!(r.insert(&row), model.insert(row.clone()), "step {step}");
            }
            assert_eq!(r.len(), model.len(), "step {step}");
        }
        let got = r.to_sorted_rows();
        let want: Vec<Vec<Value>> = model.into_iter().collect();
        assert_eq!(got, want);
    }
}
