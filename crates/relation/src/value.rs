//! Attribute values.
//!
//! The paper works over abstract domains `dom(x)`; all of its concrete
//! predicates (inequalities `x ≠ y` and comparisons `x < y`, `x ≤ y`,
//! Section 5.2) assume a totally ordered, effectively integer domain
//! ("we may without loss of generality assume that the domain ... is Z").
//! We therefore represent every attribute value as a signed 64-bit integer.
//! Non-integer source data (strings, labels) is dictionary-encoded via
//! [`crate::Dictionary`].

use std::fmt;

/// A single attribute value: a point of the (conceptually infinite) domain Z.
///
/// `Value` is `Copy`, totally ordered and hashable, which is what the join
/// and sensitivity machinery needs. Construction is cheap: `Value::from(7)`
/// or `Value(7)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub i64);

impl Value {
    /// The smallest representable value; used as the `-∞` sentinel when
    /// building the augmented active domain `Z+(q, I)` of Section 5.2.
    pub const NEG_INFINITY: Value = Value(i64::MIN);
    /// The largest representable value; the `+∞` sentinel of Section 5.2.
    pub const INFINITY: Value = Value(i64::MAX);

    /// Returns the raw integer.
    #[inline]
    pub const fn get(self) -> i64 {
        self.0
    }
}

impl From<i64> for Value {
    #[inline]
    fn from(v: i64) -> Self {
        Value(v)
    }
}

impl From<i32> for Value {
    #[inline]
    fn from(v: i32) -> Self {
        Value(v as i64)
    }
}

impl From<u32> for Value {
    #[inline]
    fn from(v: u32) -> Self {
        Value(v as i64)
    }
}

impl From<usize> for Value {
    #[inline]
    fn from(v: usize) -> Self {
        Value(v as i64)
    }
}

impl From<Value> for i64 {
    #[inline]
    fn from(v: Value) -> Self {
        v.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Convenience constructor for a row of values: `row![1, 2, 3]` equivalent.
///
/// Used pervasively in tests and examples.
#[macro_export]
macro_rules! vals {
    ($($v:expr),* $(,)?) => {
        [$($crate::value::Value($v as i64)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_conversion() {
        assert!(Value(-3) < Value(0));
        assert!(Value(0) < Value(9));
        assert_eq!(Value::from(7i64).get(), 7);
        assert_eq!(i64::from(Value(12)), 12);
        assert_eq!(Value::from(5u32), Value(5));
    }

    #[test]
    fn sentinels_bracket_everything() {
        assert!(Value::NEG_INFINITY < Value(i64::MIN + 1));
        assert!(Value::INFINITY > Value(i64::MAX - 1));
    }

    #[test]
    fn vals_macro_builds_rows() {
        let r = vals![1, 2, 3];
        assert_eq!(r, [Value(1), Value(2), Value(3)]);
    }

    #[test]
    fn display_matches_inner() {
        assert_eq!(Value(42).to_string(), "42");
        assert_eq!(format!("{:?}", Value(-1)), "-1");
    }
}
