//! An FxHash-style hasher implemented in-tree.
//!
//! The performance guides recommend `rustc-hash`-style hashing for
//! integer-keyed maps; that crate is not in the approved dependency set, so
//! we implement the same multiply-rotate construction (a few lines) here.
//! This is **not** a cryptographic or HashDoS-resistant hash; it is used for
//! internal join indexes over trusted data only.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (a large odd number derived from the
/// golden ratio, as used by Firefox and rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for integer-heavy keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes a row of values directly (used by [`crate::Relation`]'s row index
/// so rows need not be boxed just to be probed).
#[inline]
pub fn hash_row(row: &[crate::Value]) -> u64 {
    let mut h = FxHasher::default();
    // Fold in the length so all-zero rows of different arities differ.
    h.write_usize(row.len());
    for v in row {
        h.write_i64(v.0);
    }
    h.finish()
}

/// Hashes a row of dense dictionary codes (the `u32`-compressed rows of
/// the columnar factor kernel) without boxing or widening.
#[inline]
pub fn hash_codes(codes: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(codes.len());
    for &c in codes {
        h.write_u32(c);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn deterministic() {
        let a = hash_row(&[Value(1), Value(2)]);
        let b = hash_row(&[Value(1), Value(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(
            hash_row(&[Value(1), Value(2)]),
            hash_row(&[Value(2), Value(1)])
        );
    }

    #[test]
    fn length_sensitive() {
        assert_ne!(hash_row(&[Value(0)]), hash_row(&[Value(0), Value(0)]));
    }

    #[test]
    fn code_hash_is_deterministic_and_length_sensitive() {
        assert_eq!(hash_codes(&[1, 2, 3]), hash_codes(&[1, 2, 3]));
        assert_ne!(hash_codes(&[1, 2]), hash_codes(&[2, 1]));
        assert_ne!(hash_codes(&[0]), hash_codes(&[0, 0]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * i);
        }
        for i in 0..1000u64 {
            assert_eq!(m[&i], i * i);
        }
    }

    #[test]
    fn byte_writes_cover_remainder_path() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]); // 8-byte chunk + 1 remainder
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        h2.write(&[9]);
        // Not necessarily equal to `a` (chunking differs) but must not panic
        // and must be deterministic.
        let b = h2.finish();
        let mut h3 = FxHasher::default();
        h3.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a, h3.finish());
        let _ = b;
    }
}
